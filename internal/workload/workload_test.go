package workload

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/index"
)

func TestGenerateCountsAndTypes(t *testing.T) {
	ds := datasets.TPCH(5000, 1)
	qs := Generate(ds.Store, TPCHTypes(), 20, 2)
	if len(qs) != 5*20 {
		t.Fatalf("queries = %d, want 100", len(qs))
	}
	types := map[int]int{}
	for _, q := range qs {
		types[q.Type]++
	}
	if len(types) != 5 {
		t.Fatalf("types = %d, want 5", len(types))
	}
	for ty, n := range types {
		if n != 20 {
			t.Errorf("type %d has %d queries, want 20", ty, n)
		}
	}
}

func TestSelectivityRoughlyHonored(t *testing.T) {
	ds := datasets.TPCH(50000, 3)
	types := []TypeSpec{{Name: "probe", Dims: []DimSpec{
		{Dim: datasets.TPCHShipDate, Sel: 0.10, Skew: Uniform},
	}}}
	qs := Generate(ds.Store, types, 50, 4)
	sum := 0.0
	for _, q := range qs {
		sum += index.Selectivity(ds.Store, q)
	}
	avg := sum / float64(len(qs))
	if avg < 0.05 || avg > 0.2 {
		t.Errorf("avg selectivity = %.3f, want ≈0.10", avg)
	}
}

func TestRecentSkewConcentratesHigh(t *testing.T) {
	ds := datasets.TPCH(50000, 5)
	types := []TypeSpec{{Name: "recent", Dims: []DimSpec{
		{Dim: datasets.TPCHShipDate, Sel: 0.05, Skew: Recent},
	}}}
	qs := Generate(ds.Store, types, 100, 6)
	lo, hi := ds.Store.MinMax(datasets.TPCHShipDate)
	cut := hi - (hi-lo)/4 // top quarter
	inTop := 0
	for _, q := range qs {
		f, ok := q.Filter(datasets.TPCHShipDate)
		if !ok {
			t.Fatal("missing filter")
		}
		if f.Lo >= cut {
			inTop++
		}
	}
	if inTop < 80 {
		t.Errorf("only %d/100 recent-skew filters in the top quarter", inTop)
	}
}

func TestLowSkewConcentratesLow(t *testing.T) {
	ds := datasets.Taxi(50000, 7)
	types := []TypeSpec{{Name: "short", Dims: []DimSpec{
		{Dim: datasets.TaxiDistance, Sel: 0.05, Skew: Low},
	}}}
	qs := Generate(ds.Store, types, 100, 8)
	lo, hi := ds.Store.MinMax(datasets.TaxiDistance)
	cut := lo + (hi-lo)/4
	inBottom := 0
	for _, q := range qs {
		f, _ := q.Filter(datasets.TaxiDistance)
		if f.Hi <= cut {
			inBottom++
		}
	}
	// Distance is heavy-tailed, so quantile-space low filters sit far
	// below the midpoint in value space.
	if inBottom < 80 {
		t.Errorf("only %d/100 low-skew filters in the bottom quarter", inBottom)
	}
}

func TestExtremesSkewHitsBothEnds(t *testing.T) {
	ds := datasets.Stocks(50000, 9)
	types := []TypeSpec{{Name: "vol", Dims: []DimSpec{
		{Dim: datasets.StockVolume, Sel: 0.04, Skew: Extremes},
	}}}
	qs := Generate(ds.Store, types, 100, 10)
	gen := NewGenerator(ds.Store, 11)
	mid := gen.quantile(datasets.StockVolume, 0.5)
	low, high := 0, 0
	for _, q := range qs {
		f, _ := q.Filter(datasets.StockVolume)
		if f.Hi < mid {
			low++
		}
		if f.Lo > mid {
			high++
		}
	}
	if low < 30 || high < 30 {
		t.Errorf("extremes split low=%d high=%d, want both >= 30", low, high)
	}
}

func TestEqualityFilters(t *testing.T) {
	ds := datasets.Taxi(20000, 11)
	types := []TypeSpec{{Name: "pax", Dims: []DimSpec{
		{Dim: datasets.TaxiPassengers, Equality: true, Skew: Low},
	}}}
	qs := Generate(ds.Store, types, 50, 12)
	for _, q := range qs {
		f, _ := q.Filter(datasets.TaxiPassengers)
		if !f.IsEquality() {
			t.Fatalf("expected equality filter, got %+v", f)
		}
	}
}

func TestForDatasetDispatch(t *testing.T) {
	for _, mk := range []func(int, int64) *datasets.Dataset{
		datasets.TPCH, datasets.Taxi, datasets.Perfmon, datasets.Stocks,
	} {
		ds := mk(2000, 13)
		qs := ForDataset(ds, 10, 14)
		if len(qs) == 0 {
			t.Fatalf("%s workload empty", ds.Name)
		}
		for _, q := range qs {
			if len(q.Filters) == 0 {
				t.Fatalf("%s produced an unfiltered query", ds.Name)
			}
			for _, f := range q.Filters {
				if f.Dim < 0 || f.Dim >= ds.Dims() {
					t.Fatalf("%s filter dim %d out of range", ds.Name, f.Dim)
				}
			}
		}
	}
}

func TestSyntheticTypesForAllDims(t *testing.T) {
	for _, d := range []int{4, 8, 12, 16, 20} {
		types := SyntheticTypes(d)
		if len(types) != 4 {
			t.Fatalf("d=%d: types = %d, want 4", d, len(types))
		}
		for _, ty := range types {
			if len(ty.Dims) == 0 {
				t.Fatalf("d=%d: empty type", d)
			}
			for _, ds := range ty.Dims {
				if ds.Dim < 0 || ds.Dim >= d {
					t.Fatalf("d=%d: dim %d out of range", d, ds.Dim)
				}
			}
		}
	}
}

func TestSelectivityTypesCombined(t *testing.T) {
	ds := datasets.SyntheticCorrelated(50000, 8, 15)
	target := 0.01
	qs := Generate(ds.Store, SelectivityTypes(4, target), 30, 16)
	sum := 0.0
	for _, q := range qs {
		sum += index.Selectivity(ds.Store, q)
	}
	avg := sum / float64(len(qs))
	// Correlated dims make per-dim independence only approximate; accept a
	// generous band around the target.
	if avg < target/20 || avg > target*20 {
		t.Errorf("avg combined selectivity = %.5f, want within 20x of %.5f", avg, target)
	}
}

// Package workload synthesizes the query workloads of §6.2: each dataset's
// workload consists of a handful of query types — templates that fix which
// dimensions are filtered, how selective each filter is, and where in the
// data space queries concentrate — with a configurable number of queries
// per type (the paper uses 100). Skew (recency bias, very-low / very-high
// value bias) is expressed per dimension.
//
// Filter endpoints are drawn in quantile space over a per-dimension sorted
// sample, so a requested selectivity of 1% yields a filter matching ≈1% of
// rows in that dimension regardless of the value distribution.
package workload

import (
	"math/rand"
	"sort"

	"repro/internal/colstore"
	"repro/internal/query"
)

// Skew describes where a filter's position is drawn in quantile space.
type Skew int

const (
	// Uniform places filters uniformly over the dimension.
	Uniform Skew = iota
	// Recent concentrates filters near the top of the domain (e.g. recent
	// timestamps, high CPU usage).
	Recent
	// Low concentrates filters near the bottom of the domain (e.g. short
	// trip distances).
	Low
	// Extremes places filters near the bottom or the top, alternating
	// (e.g. very low and very high passenger counts).
	Extremes
)

// DimSpec is one filtered dimension of a query template.
type DimSpec struct {
	Dim int
	// Sel is the target per-dimension selectivity (fraction of rows the
	// filter matches in this dimension alone). Ignored for Equality specs.
	Sel float64
	// Jitter multiplies Sel by a uniform factor in [1-Jitter, 1+Jitter].
	Jitter float64
	// Skew biases the filter's position.
	Skew Skew
	// Equality pins the dimension to a single sampled value instead of a
	// range.
	Equality bool
}

// TypeSpec is a query template: all queries of the type filter the same
// dimensions with similar selectivities (§4.3.1).
type TypeSpec struct {
	Name string
	Dims []DimSpec
}

// Generator draws queries over a store.
type Generator struct {
	st     *colstore.Store
	rng    *rand.Rand
	sorted [][]int64 // per-dim sorted sample for quantile lookups
}

// NewGenerator samples the store (up to 20k rows per dim) for quantile
// lookups.
func NewGenerator(st *colstore.Store, seed int64) *Generator {
	g := &Generator{st: st, rng: rand.New(rand.NewSource(seed))}
	g.sorted = make([][]int64, st.NumDims())
	n := st.NumRows()
	keep := n
	if keep > 20000 {
		keep = 20000
	}
	stride := 1
	if n > keep && keep > 0 {
		stride = n / keep
	}
	for j := 0; j < st.NumDims(); j++ {
		col := st.Column(j)
		s := make([]int64, 0, keep)
		for i := 0; i < n; i += stride {
			s = append(s, col[i])
		}
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		g.sorted[j] = s
	}
	return g
}

// quantile returns the value at quantile u of dimension j.
func (g *Generator) quantile(j int, u float64) int64 {
	s := g.sorted[j]
	if len(s) == 0 {
		return 0
	}
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	idx := int(u * float64(len(s)-1))
	return s[idx]
}

// position draws the filter's starting quantile for width w under skew sk.
// flip alternates Extremes between the two ends.
func (g *Generator) position(sk Skew, w float64, flip bool) float64 {
	room := 1 - w
	if room <= 0 {
		return 0
	}
	switch sk {
	case Recent:
		off := absf(g.rng.NormFloat64() * 0.06)
		if off > room {
			off = room
		}
		return room - off
	case Low:
		off := absf(g.rng.NormFloat64() * 0.06)
		if off > room {
			off = room
		}
		return off
	case Extremes:
		off := absf(g.rng.NormFloat64() * 0.04)
		if off > room {
			off = room
		}
		if flip {
			return room - off
		}
		return 0
	default:
		return g.rng.Float64() * room
	}
}

// Generate synthesizes perType queries per template. Every query is a
// COUNT(*) (the paper's aggregation; all indexes pay the same fixed
// aggregation cost). Query Type ids are assigned from the template order.
func (g *Generator) Generate(types []TypeSpec, perType int) []query.Query {
	var out []query.Query
	for ti, t := range types {
		for k := 0; k < perType; k++ {
			var fs []query.Filter
			for _, ds := range t.Dims {
				fs = append(fs, g.filter(ds, k%2 == 1))
			}
			q := query.NewCount(fs...)
			q.Type = ti
			out = append(out, q)
		}
	}
	return out
}

func (g *Generator) filter(ds DimSpec, flip bool) query.Filter {
	if ds.Equality {
		v := g.quantile(ds.Dim, g.position(ds.Skew, 0, flip))
		return query.Filter{Dim: ds.Dim, Lo: v, Hi: v}
	}
	sel := ds.Sel
	if ds.Jitter > 0 {
		sel *= 1 + (g.rng.Float64()*2-1)*ds.Jitter
	}
	if sel <= 0 {
		sel = 1e-5
	}
	if sel > 1 {
		sel = 1
	}
	u := g.position(ds.Skew, sel, flip)
	lo := g.quantile(ds.Dim, u)
	hi := g.quantile(ds.Dim, u+sel)
	if hi < lo {
		lo, hi = hi, lo
	}
	return query.Filter{Dim: ds.Dim, Lo: lo, Hi: hi}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

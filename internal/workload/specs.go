package workload

import (
	"math"

	"repro/internal/colstore"
	"repro/internal/datasets"
	"repro/internal/query"
)

// The workload constructors below mirror §6.2: each dataset gets the
// paper's number of query types, answering the kinds of analytics questions
// it describes, with the reported skews (recency bias over time, very-low /
// very-high value bias) and per-query selectivities in the reported ranges.

// TPCHTypes returns the 5 TPC-H query types. As in the paper's example
// questions ("How many high-priced orders in the past year used a
// significant discount?"), query skew concentrates on the date dimensions
// — most types hit recent data — while value-dimension filters are spread
// uniformly.
func TPCHTypes() []TypeSpec {
	return []TypeSpec{
		{Name: "recent-high-price-discounted", Dims: []DimSpec{
			{Dim: datasets.TPCHShipDate, Sel: 0.1, Jitter: 0.2, Skew: Recent},
			{Dim: datasets.TPCHExtendedPrice, Sel: 0.15, Jitter: 0.2, Skew: Uniform},
			{Dim: datasets.TPCHDiscount, Sel: 0.3, Jitter: 0.2, Skew: Uniform},
		}},
		{Name: "air-shipments-low-quantity", Dims: []DimSpec{
			{Dim: datasets.TPCHShipMode, Equality: true, Skew: Uniform},
			{Dim: datasets.TPCHQuantity, Sel: 0.15, Jitter: 0.2, Skew: Low},
			{Dim: datasets.TPCHShipDate, Sel: 0.2, Jitter: 0.2, Skew: Recent},
		}},
		{Name: "commit-vs-receipt-window", Dims: []DimSpec{
			{Dim: datasets.TPCHCommitDate, Sel: 0.08, Jitter: 0.2, Skew: Recent},
			{Dim: datasets.TPCHReceiptDate, Sel: 0.08, Jitter: 0.2, Skew: Recent},
		}},
		{Name: "tax-audit-recent", Dims: []DimSpec{
			{Dim: datasets.TPCHTax, Sel: 0.3, Jitter: 0.2, Skew: Uniform},
			{Dim: datasets.TPCHReceiptDate, Sel: 0.1, Jitter: 0.2, Skew: Recent},
			{Dim: datasets.TPCHQuantity, Sel: 0.2, Jitter: 0.2, Skew: Uniform},
		}},
		{Name: "historical-price-band", Dims: []DimSpec{
			{Dim: datasets.TPCHShipDate, Sel: 0.3, Jitter: 0.2, Skew: Uniform},
			{Dim: datasets.TPCHExtendedPrice, Sel: 0.08, Jitter: 0.2, Skew: Uniform},
		}},
	}
}

// TPCHShiftedTypes returns the 5 replacement query types of the Fig 9a
// workload-shift experiment — different dimensions, selectivities and
// skews.
func TPCHShiftedTypes() []TypeSpec {
	return []TypeSpec{
		{Name: "shift-quantity-heavy", Dims: []DimSpec{
			{Dim: datasets.TPCHQuantity, Sel: 0.05, Jitter: 0.2, Skew: Recent},
			{Dim: datasets.TPCHTax, Sel: 0.35, Jitter: 0.2, Skew: Uniform},
		}},
		{Name: "shift-old-shipments", Dims: []DimSpec{
			{Dim: datasets.TPCHShipDate, Sel: 0.06, Jitter: 0.2, Skew: Low},
			{Dim: datasets.TPCHShipMode, Equality: true, Skew: Uniform},
		}},
		{Name: "shift-price-band", Dims: []DimSpec{
			{Dim: datasets.TPCHExtendedPrice, Sel: 0.04, Jitter: 0.2, Skew: Extremes},
			{Dim: datasets.TPCHDiscount, Sel: 0.4, Jitter: 0.2, Skew: Low},
		}},
		{Name: "shift-commit-recent", Dims: []DimSpec{
			{Dim: datasets.TPCHCommitDate, Sel: 0.05, Jitter: 0.2, Skew: Recent},
			{Dim: datasets.TPCHQuantity, Sel: 0.25, Jitter: 0.2, Skew: Recent},
		}},
		{Name: "shift-receipt-tax", Dims: []DimSpec{
			{Dim: datasets.TPCHReceiptDate, Sel: 0.07, Jitter: 0.2, Skew: Low},
			{Dim: datasets.TPCHTax, Sel: 0.25, Jitter: 0.2, Skew: Extremes},
		}},
	}
}

// TaxiTypes returns the 6 Taxi query types (§6.2: skew over time, passenger
// count, and trip distance; selectivity 0.25%–3.9%).
func TaxiTypes() []TypeSpec {
	return []TypeSpec{
		{Name: "single-pax-manhattan", Dims: []DimSpec{
			{Dim: datasets.TaxiPassengers, Equality: true, Skew: Low},
			{Dim: datasets.TaxiPickupZone, Sel: 0.12, Jitter: 0.2, Skew: Uniform},
			{Dim: datasets.TaxiDropoffZone, Sel: 0.12, Jitter: 0.2, Skew: Uniform},
		}},
		{Name: "recent-short-trips", Dims: []DimSpec{
			{Dim: datasets.TaxiPickupTime, Sel: 0.1, Jitter: 0.2, Skew: Recent},
			{Dim: datasets.TaxiDistance, Sel: 0.15, Jitter: 0.2, Skew: Low},
		}},
		{Name: "recent-fare-band", Dims: []DimSpec{
			{Dim: datasets.TaxiPickupTime, Sel: 0.08, Jitter: 0.2, Skew: Recent},
			{Dim: datasets.TaxiFare, Sel: 0.2, Jitter: 0.2, Skew: Uniform},
		}},
		{Name: "high-pax-trips", Dims: []DimSpec{
			{Dim: datasets.TaxiPassengers, Sel: 0.08, Jitter: 0.1, Skew: Recent},
			{Dim: datasets.TaxiDistance, Sel: 0.2, Jitter: 0.2, Skew: Low},
		}},
		{Name: "tip-analysis", Dims: []DimSpec{
			{Dim: datasets.TaxiTip, Sel: 0.1, Jitter: 0.2, Skew: Uniform},
			{Dim: datasets.TaxiTotal, Sel: 0.15, Jitter: 0.2, Skew: Uniform},
			{Dim: datasets.TaxiPickupTime, Sel: 0.25, Jitter: 0.2, Skew: Recent},
		}},
		{Name: "dropoff-window", Dims: []DimSpec{
			{Dim: datasets.TaxiDropoffTime, Sel: 0.05, Jitter: 0.2, Skew: Recent},
			{Dim: datasets.TaxiPickupZone, Sel: 0.2, Jitter: 0.2, Skew: Uniform},
		}},
	}
}

// PerfmonTypes returns the 5 Perfmon query types (§6.2: skew over time —
// recent data — and CPU usage — high usage; selectivity 0.5%–4.9%).
func PerfmonTypes() []TypeSpec {
	return []TypeSpec{
		{Name: "recent-high-load", Dims: []DimSpec{
			{Dim: datasets.PerfTime, Sel: 0.09, Jitter: 0.2, Skew: Recent},
			{Dim: datasets.PerfLoad1, Sel: 0.1, Jitter: 0.2, Skew: Recent},
		}},
		{Name: "machine-set-high-cpu", Dims: []DimSpec{
			{Dim: datasets.PerfMachine, Sel: 0.1, Jitter: 0.2, Skew: Uniform},
			{Dim: datasets.PerfCPUUser, Sel: 0.08, Jitter: 0.2, Skew: Recent},
		}},
		{Name: "recent-sys-cpu", Dims: []DimSpec{
			{Dim: datasets.PerfTime, Sel: 0.12, Jitter: 0.2, Skew: Recent},
			{Dim: datasets.PerfCPUSys, Sel: 0.07, Jitter: 0.2, Skew: Recent},
		}},
		{Name: "load-average-pair", Dims: []DimSpec{
			{Dim: datasets.PerfLoad1, Sel: 0.1, Jitter: 0.2, Skew: Recent},
			{Dim: datasets.PerfLoad5, Sel: 0.1, Jitter: 0.2, Skew: Recent},
		}},
		{Name: "memory-pressure", Dims: []DimSpec{
			{Dim: datasets.PerfMem, Sel: 0.06, Jitter: 0.2, Skew: Uniform},
			{Dim: datasets.PerfTime, Sel: 0.2, Jitter: 0.2, Skew: Recent},
		}},
	}
}

// StocksTypes returns the 5 Stocks query types (§6.2: skew over time and
// volume; selectivity tightly around 0.5%).
func StocksTypes() []TypeSpec {
	return []TypeSpec{
		{Name: "low-intraday-change-high-volume", Dims: []DimSpec{
			{Dim: datasets.StockLow, Sel: 0.1, Jitter: 0.1, Skew: Uniform},
			{Dim: datasets.StockHigh, Sel: 0.1, Jitter: 0.1, Skew: Uniform},
			{Dim: datasets.StockVolume, Sel: 0.15, Jitter: 0.1, Skew: Recent},
		}},
		{Name: "recent-close-band", Dims: []DimSpec{
			{Dim: datasets.StockDate, Sel: 0.08, Jitter: 0.1, Skew: Recent},
			{Dim: datasets.StockClose, Sel: 0.08, Jitter: 0.1, Skew: Uniform},
		}},
		{Name: "volume-extremes", Dims: []DimSpec{
			{Dim: datasets.StockVolume, Sel: 0.04, Jitter: 0.1, Skew: Extremes},
			{Dim: datasets.StockDate, Sel: 0.15, Jitter: 0.1, Skew: Recent},
		}},
		{Name: "open-close-pair", Dims: []DimSpec{
			{Dim: datasets.StockOpen, Sel: 0.07, Jitter: 0.1, Skew: Uniform},
			{Dim: datasets.StockClose, Sel: 0.07, Jitter: 0.1, Skew: Uniform},
		}},
		{Name: "adjusted-close-recent", Dims: []DimSpec{
			{Dim: datasets.StockAdjClose, Sel: 0.06, Jitter: 0.1, Skew: Uniform},
			{Dim: datasets.StockDate, Sel: 0.1, Jitter: 0.1, Skew: Recent},
		}},
	}
}

// SyntheticTypes returns the Fig 10 synthetic workload: four query types;
// earlier dimensions are filtered with exponentially higher selectivity
// than later dimensions, and queries are skewed over the first four dims.
func SyntheticTypes(d int) []TypeSpec {
	sel := func(j int) float64 {
		s := 0.02 * float64(int(1)<<uint(j))
		if s > 0.6 {
			s = 0.6
		}
		return s
	}
	skew := func(j int) Skew {
		if j < 4 {
			return Recent
		}
		return Uniform
	}
	// Four templates over different dimension subsets; dims beyond d are
	// dropped, so the same shapes work for every d in the Fig 10 sweep.
	shapes := [][]int{
		{0, 1, 2},
		{0, 2, 4},
		{1, 3, 5},
		{0, 3, d - 1},
	}
	var types []TypeSpec
	for _, shape := range shapes {
		var dims []DimSpec
		seen := map[int]bool{}
		for _, j := range shape {
			if j < 0 || j >= d || seen[j] {
				continue
			}
			seen[j] = true
			dims = append(dims, DimSpec{Dim: j, Sel: sel(j), Jitter: 0.2, Skew: skew(j)})
		}
		if len(dims) == 0 {
			dims = append(dims, DimSpec{Dim: 0, Sel: sel(0), Jitter: 0.2, Skew: Recent})
		}
		types = append(types, TypeSpec{Name: "synthetic", Dims: dims})
	}
	return types
}

// SelectivityTypes returns a single query type over the first k dimensions
// whose combined selectivity is approximately target (Fig 11b sweeps it
// from 0.00001 to 0.1): each per-dimension filter has selectivity
// target^(1/k).
func SelectivityTypes(k int, target float64) []TypeSpec {
	per := math.Pow(target, 1.0/float64(k))
	dims := make([]DimSpec, k)
	for j := range dims {
		dims[j] = DimSpec{Dim: j, Sel: per, Jitter: 0.1, Skew: Uniform}
	}
	return []TypeSpec{{Name: "selectivity-sweep", Dims: dims}}
}

// ForDataset returns the paper's workload for a generated dataset by name.
func ForDataset(d *datasets.Dataset, perType int, seed int64) []query.Query {
	g := NewGenerator(d.Store, seed)
	var types []TypeSpec
	switch d.Name {
	case "TPC-H":
		types = TPCHTypes()
	case "Taxi":
		types = TaxiTypes()
	case "Perfmon":
		types = PerfmonTypes()
	case "Stocks":
		types = StocksTypes()
	default:
		types = SyntheticTypes(d.Dims())
	}
	return g.Generate(types, perType)
}

// Generate is a convenience wrapper: build a generator and synthesize.
func Generate(st *colstore.Store, types []TypeSpec, perType int, seed int64) []query.Query {
	return NewGenerator(st, seed).Generate(types, perType)
}

package qparse

import (
	"testing"
)

// FuzzQueryParse ensures the CLI query parser never panics and that
// successful parses produce structurally valid queries.
func FuzzQueryParse(f *testing.F) {
	names := []string{"day", "store", "price", "qty"}
	for _, seed := range []string{
		"count qty=5",
		"sum price day>=100",
		"count 10<=day<=20 store=3",
		"explain price<100",
		"count d2<=500",
		"count 100<=price",
		"count",
		"sum",
		"garbage <<== =",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		q, err := Parse(line, names)
		if err != nil {
			return
		}
		for _, flt := range q.Filters {
			if flt.Dim < 0 || flt.Dim >= len(names) {
				t.Fatalf("parsed filter with out-of-range dim %d from %q", flt.Dim, line)
			}
		}
	})
}

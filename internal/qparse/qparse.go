// Package qparse parses the small filter language used by the tsunami-cli
// tool into queries:
//
//	count price<=2500 qty=3 10<=day<=200
//	sum price day>=700 store=12
//
// Each whitespace-separated term is one predicate over a named column:
//
//	col=v        equality
//	col<=v       upper bound        col<v    strict upper bound
//	col>=v       lower bound        col>v    strict lower bound
//	a<=col<=b    range (also with < on either side)
//
// Terms over the same column intersect. A trailing "by <col>" clause
// turns the aggregate into a grouped one (GROUP BY):
//
//	count day<=100 by store
//	sum price store=12 by qty
package qparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/query"
)

// Parse builds a query from a command line. names maps column names to
// dimensions. verb must be "count" or "sum"; for "sum" the first argument
// is the aggregated column.
func Parse(line string, names []string) (query.Query, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return query.Query{}, fmt.Errorf("empty query")
	}
	verb := strings.ToLower(fields[0])
	args := fields[1:]

	dimOf := func(name string) (int, error) {
		for i, n := range names {
			if n == name {
				return i, nil
			}
		}
		// Also accept d0, d1, ... positional names.
		if strings.HasPrefix(name, "d") {
			if i, err := strconv.Atoi(name[1:]); err == nil && i >= 0 && i < len(names) {
				return i, nil
			}
		}
		return 0, fmt.Errorf("unknown column %q (have %s)", name, strings.Join(names, ", "))
	}

	var q query.Query
	switch verb {
	case "count", "explain":
		q = query.NewCount()
	case "sum":
		if len(args) == 0 {
			return q, fmt.Errorf("sum needs an aggregated column")
		}
		dim, err := dimOf(args[0])
		if err != nil {
			return q, err
		}
		q = query.NewSum(dim)
		args = args[1:]
	default:
		return q, fmt.Errorf("unknown verb %q (count, sum, explain)", verb)
	}

	// A trailing "by <col>" clause makes the aggregate grouped. The
	// keyword is matched case-insensitively and must be second-to-last so
	// it can never be confused with a predicate term (terms always
	// contain a comparison operator).
	groupDim := -1
	if len(args) >= 2 && strings.EqualFold(args[len(args)-2], "by") {
		dim, err := dimOf(args[len(args)-1])
		if err != nil {
			return q, fmt.Errorf("group by: %w", err)
		}
		groupDim = dim
		args = args[:len(args)-2]
	}

	var filters []query.Filter
	for _, term := range args {
		f, err := parseTerm(term, dimOf)
		if err != nil {
			return q, err
		}
		filters = append(filters, f)
	}
	var out query.Query
	if q.Agg == query.Sum {
		out = query.NewSum(q.AggDim, filters...)
	} else {
		out = query.NewCount(filters...)
	}
	if groupDim >= 0 {
		out = out.By(groupDim)
	}
	return out, nil
}

// parseTerm parses one predicate term.
func parseTerm(term string, dimOf func(string) (int, error)) (query.Filter, error) {
	// Split on comparison operators, keeping them. A term has one or two
	// operators: col<=v, v<=col<=v, col=v, ...
	parts, ops, err := tokenize(term)
	if err != nil {
		return query.Filter{}, err
	}
	switch len(ops) {
	case 1:
		l, r := parts[0], parts[1]
		lv, lErr := strconv.ParseInt(l, 10, 64)
		rv, rErr := strconv.ParseInt(r, 10, 64)
		switch {
		case lErr != nil && rErr == nil: // col OP value
			dim, err := dimOf(l)
			if err != nil {
				return query.Filter{}, err
			}
			return filterFromOp(dim, ops[0], rv, false)
		case lErr == nil && rErr != nil: // value OP col  (flip)
			dim, err := dimOf(r)
			if err != nil {
				return query.Filter{}, err
			}
			return filterFromOp(dim, ops[0], lv, true)
		default:
			return query.Filter{}, fmt.Errorf("cannot parse term %q", term)
		}
	case 2:
		// a OP col OP b
		a, c, b := parts[0], parts[1], parts[2]
		av, aErr := strconv.ParseInt(a, 10, 64)
		bv, bErr := strconv.ParseInt(b, 10, 64)
		if aErr != nil || bErr != nil {
			return query.Filter{}, fmt.Errorf("range term %q needs numeric bounds", term)
		}
		dim, err := dimOf(c)
		if err != nil {
			return query.Filter{}, err
		}
		lo, err := boundFrom(ops[0], av, true)
		if err != nil {
			return query.Filter{}, fmt.Errorf("term %q: %w", term, err)
		}
		hi, err := boundFrom(ops[1], bv, false)
		if err != nil {
			return query.Filter{}, fmt.Errorf("term %q: %w", term, err)
		}
		return query.Filter{Dim: dim, Lo: lo, Hi: hi}, nil
	default:
		return query.Filter{}, fmt.Errorf("cannot parse term %q", term)
	}
}

// tokenize splits a term like "10<=day<200" into parts ["10","day","200"]
// and ops ["<=","<"].
func tokenize(term string) ([]string, []string, error) {
	var parts, ops []string
	cur := strings.Builder{}
	i := 0
	for i < len(term) {
		c := term[i]
		if c == '<' || c == '>' || c == '=' {
			op := string(c)
			if (c == '<' || c == '>') && i+1 < len(term) && term[i+1] == '=' {
				op += "="
				i++
			}
			parts = append(parts, cur.String())
			cur.Reset()
			ops = append(ops, op)
			i++
			continue
		}
		cur.WriteByte(c)
		i++
	}
	parts = append(parts, cur.String())
	for _, p := range parts {
		if p == "" {
			return nil, nil, fmt.Errorf("malformed term %q", term)
		}
	}
	if len(ops) == 0 || len(ops) > 2 {
		return nil, nil, fmt.Errorf("term %q needs 1 or 2 comparisons", term)
	}
	return parts, ops, nil
}

// filterFromOp builds a one-sided filter. flipped means the value was on
// the left ("5<=col" instead of "col>=5").
func filterFromOp(dim int, op string, v int64, flipped bool) (query.Filter, error) {
	if flipped {
		switch op {
		case "<=":
			op = ">="
		case "<":
			op = ">"
		case ">=":
			op = "<="
		case ">":
			op = "<"
		}
	}
	f := query.Filter{Dim: dim, Lo: query.NoLo, Hi: query.NoHi}
	switch op {
	case "=":
		f.Lo, f.Hi = v, v
	case "<=":
		f.Hi = v
	case "<":
		f.Hi = v - 1
	case ">=":
		f.Lo = v
	case ">":
		f.Lo = v + 1
	default:
		return f, fmt.Errorf("unknown operator %q", op)
	}
	return f, nil
}

// boundFrom interprets the operator of a two-sided range term.
func boundFrom(op string, v int64, isLower bool) (int64, error) {
	switch op {
	case "<=":
		return v, nil
	case "<":
		if isLower {
			return v + 1, nil
		}
		return v - 1, nil
	default:
		return 0, fmt.Errorf("range terms use < or <=, got %q", op)
	}
}

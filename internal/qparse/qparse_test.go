package qparse

import (
	"testing"

	"repro/internal/query"
)

var names = []string{"day", "store", "price", "qty"}

func mustParse(t *testing.T, line string) query.Query {
	t.Helper()
	q, err := Parse(line, names)
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	return q
}

func TestParseCountEquality(t *testing.T) {
	q := mustParse(t, "count qty=5")
	if q.Agg != query.Count {
		t.Error("expected COUNT")
	}
	f, ok := q.Filter(3)
	if !ok || f.Lo != 5 || f.Hi != 5 {
		t.Errorf("filter = %+v", f)
	}
}

func TestParseSum(t *testing.T) {
	q := mustParse(t, "sum price day>=100")
	if q.Agg != query.Sum || q.AggDim != 2 {
		t.Errorf("agg = %v dim %d", q.Agg, q.AggDim)
	}
	f, _ := q.Filter(0)
	if f.Lo != 100 || f.Hi != query.NoHi {
		t.Errorf("filter = %+v", f)
	}
}

func TestParseTwoSidedRange(t *testing.T) {
	q := mustParse(t, "count 10<=day<=20")
	f, _ := q.Filter(0)
	if f.Lo != 10 || f.Hi != 20 {
		t.Errorf("filter = %+v", f)
	}
	q = mustParse(t, "count 10<day<20")
	f, _ = q.Filter(0)
	if f.Lo != 11 || f.Hi != 19 {
		t.Errorf("strict range filter = %+v", f)
	}
}

func TestParseStrictOneSided(t *testing.T) {
	q := mustParse(t, "count price<100")
	f, _ := q.Filter(2)
	if f.Hi != 99 || f.Lo != query.NoLo {
		t.Errorf("filter = %+v", f)
	}
	q = mustParse(t, "count price>100")
	f, _ = q.Filter(2)
	if f.Lo != 101 {
		t.Errorf("filter = %+v", f)
	}
}

func TestParseFlippedComparison(t *testing.T) {
	q := mustParse(t, "count 100<=price")
	f, _ := q.Filter(2)
	if f.Lo != 100 || f.Hi != query.NoHi {
		t.Errorf("flipped filter = %+v", f)
	}
}

func TestParseMultipleTermsIntersect(t *testing.T) {
	q := mustParse(t, "count day>=10 day<=20 store=3")
	f, _ := q.Filter(0)
	if f.Lo != 10 || f.Hi != 20 {
		t.Errorf("intersected filter = %+v", f)
	}
	if len(q.Filters) != 2 {
		t.Errorf("filters = %d, want 2", len(q.Filters))
	}
}

func TestParsePositionalNames(t *testing.T) {
	q := mustParse(t, "count d2<=500")
	if _, ok := q.Filter(2); !ok {
		t.Error("positional column name d2 not resolved")
	}
}

func TestParseErrors(t *testing.T) {
	for _, line := range []string{
		"",
		"frobnicate qty=5",
		"count nosuchcol=5",
		"count qty",
		"count qty=abc",
		"count 5=6",
		"sum",
		"count 1<=qty<=2<=3",
		"count <=5",
		"count 10>=day>=2", // two-sided must use < or <=
	} {
		if _, err := Parse(line, names); err == nil {
			t.Errorf("Parse(%q) should fail", line)
		}
	}
}

func TestParseExplainVerb(t *testing.T) {
	q := mustParse(t, "explain qty=1")
	if q.Agg != query.Count {
		t.Error("explain should parse as COUNT")
	}
}

func TestParseGroupBy(t *testing.T) {
	q := mustParse(t, "count day<=100 by store")
	if !q.Grouped() || q.GroupDim() != 1 {
		t.Errorf("GroupBy = %d, want grouped on dim 1", q.GroupBy)
	}
	if f, ok := q.Filter(0); !ok || f.Hi != 100 {
		t.Errorf("filter = %+v", f)
	}

	q = mustParse(t, "sum price store=12 by qty")
	if q.Agg != query.Sum || q.AggDim != 2 || !q.Grouped() || q.GroupDim() != 3 {
		t.Errorf("parsed %+v", q)
	}

	// No filters, positional group column, case-insensitive keyword.
	q = mustParse(t, "count BY d3")
	if !q.Grouped() || q.GroupDim() != 3 || len(q.Filters) != 0 {
		t.Errorf("parsed %+v", q)
	}

	// Ungrouped queries keep the zero GroupBy.
	if q := mustParse(t, "count qty=5"); q.Grouped() {
		t.Error("flat query parsed as grouped")
	}
}

func TestParseGroupByErrors(t *testing.T) {
	for _, line := range []string{
		"count day<=100 by nosuchcol",
		"count by",        // bare keyword: "by" is not a predicate
		"count day<=1 by", // trailing keyword without a column
	} {
		if _, err := Parse(line, names); err == nil {
			t.Errorf("Parse(%q) should fail", line)
		}
	}
}

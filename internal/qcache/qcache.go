// Package qcache is the epoch-keyed query-result cache behind the
// serving layers' hot paths.
//
// The cache key is (version, exact canonical query) — the query's
// literal filter bounds included. This is deliberately NOT the wstats
// fingerprint: fingerprints erase literal bounds so that
// `count fare<=10` and `count fare<=20` collapse into one shape for
// workload accounting, which is exactly wrong for a result cache — the
// two queries have different answers. Keying on the exact literals makes
// a hit correct by construction; the wstats heavy-hitter list is still
// the right tool for deciding *what* is worth caching, just not for
// identifying an entry.
//
// Invalidation is exact and free. The version a caller passes is the
// serving epoch the result was computed at: the LiveStore's epoch
// counter, or for the sharded router a digest of (topology generation,
// routed shard ids, per-shard epochs). Every publish bumps the epoch,
// so a cached entry is valid precisely while its version is current — a
// stale entry's key simply never matches again and no sweeper or TTL is
// needed. Stale entries are reclaimed lazily by eviction pressure,
// which prefers entries whose version differs from the one being
// inserted (i.e. provably stale ones) over live ones.
//
// Callers that need multi-component versions (the sharded router) pass
// the full version vector alongside the digested version; entries store
// a copy and Get compares it element-wise, so a digest collision can
// cause a spurious miss but never a stale hit.
package qcache

import (
	"sync"
	"sync/atomic"

	"repro/internal/colstore"
	"repro/internal/query"
)

const (
	// maxFilters bounds the inline filter array in a key. Queries with
	// more filters are simply not cached — at that width the routing and
	// scan cost dwarfs a map probe anyway.
	maxFilters = 8
	// nlocks is the lock-striping factor: keys hash across this many
	// independently locked map shards.
	nlocks = 16
	// evictScan is how many map entries a full shard examines looking
	// for a stale-version victim before settling for any entry.
	evictScan = 4
)

// key is the exact identity of a cached result: version plus the full
// canonical query (aggregate, aggregate dimension, and every filter with
// its literal bounds). It is a comparable value type so lookups are
// allocation-free map probes. query.Type is excluded — it names the
// template a query was generated from, not its semantics.
type key struct {
	ver     uint64
	agg     query.Agg
	aggDim  int
	groupBy int // query.Query.GroupBy: 1+dim for grouped, 0 for flat
	nf      int
	f       [maxFilters]query.Filter
}

// entry pairs a result with the version vector it was computed under
// (nil for single-epoch callers). Flat and grouped entries share the
// map: their keys can never collide because groupBy is part of the key
// (0 for flat queries, 1+dim for grouped ones).
type entry struct {
	vec     []uint64
	res     colstore.ScanResult
	grouped *colstore.GroupedResult // non-nil iff the entry is grouped
}

type lockShard struct {
	mu sync.Mutex
	m  map[key]entry
}

// Cache is a bounded, concurrency-safe result cache. A nil *Cache is
// valid and no-ops (misses on Get, drops Puts), matching the serving
// stack's nil→no-op observability contract.
type Cache struct {
	perShard  int
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	shards    [nlocks]lockShard
}

// New returns a cache holding roughly entries results (rounded up to the
// lock-striping granularity). entries <= 0 returns nil — the no-op cache.
func New(entries int) *Cache {
	if entries <= 0 {
		return nil
	}
	per := (entries + nlocks - 1) / nlocks
	c := &Cache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[key]entry, per)
	}
	return c
}

// keyOf builds the cache key for q at ver. ok=false means the query is
// not cacheable: too many filters, or filters not in canonical order
// (query constructors normalize — sorted by dimension, duplicates
// intersected — so a non-canonical query is a hand-built one whose
// textual identity is unreliable; refusing to cache it is always safe).
func keyOf(ver uint64, q query.Query) (key, bool) {
	if len(q.Filters) > maxFilters {
		return key{}, false
	}
	k := key{ver: ver, agg: q.Agg, groupBy: q.GroupBy, nf: len(q.Filters)}
	if q.Agg == query.Sum {
		k.aggDim = q.AggDim
	}
	last := -1
	for i, f := range q.Filters {
		if f.Dim <= last {
			return key{}, false
		}
		last = f.Dim
		k.f[i] = f
	}
	return k, true
}

// fnv-1a over the key's fields, for lock-shard selection.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (k *key) shard() int {
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		h ^= v
		h *= fnvPrime
	}
	mix(k.ver)
	mix(uint64(k.agg)<<32 | uint64(uint32(k.aggDim)))
	mix(uint64(uint32(k.groupBy)))
	mix(uint64(k.nf))
	for i := 0; i < k.nf; i++ {
		f := &k.f[i]
		mix(uint64(f.Dim))
		mix(uint64(f.Lo))
		mix(uint64(f.Hi))
	}
	return int(h % nlocks)
}

// Digest folds a version vector into the single version word used for
// keying. Collisions are harmless: Get compares the full vector.
func Digest(vec []uint64) uint64 {
	h := uint64(fnvOffset)
	for _, v := range vec {
		h ^= v
		h *= fnvPrime
	}
	return h
}

func vecEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Get looks up q's result at version ver. vec, when non-nil, must match
// the stored entry's vector element-wise — the collision-proof check
// behind Digest. A miss (or a nil cache) reports ok=false.
func (c *Cache) Get(ver uint64, vec []uint64, q query.Query) (colstore.ScanResult, bool) {
	if c == nil {
		return colstore.ScanResult{}, false
	}
	k, ok := keyOf(ver, q)
	if !ok {
		c.misses.Add(1)
		return colstore.ScanResult{}, false
	}
	s := &c.shards[k.shard()]
	s.mu.Lock()
	e, hit := s.m[k]
	s.mu.Unlock()
	if !hit || e.grouped != nil || !vecEqual(e.vec, vec) {
		c.misses.Add(1)
		return colstore.ScanResult{}, false
	}
	c.hits.Add(1)
	return e.res, true
}

// Put stores q's result computed at version ver (with its version
// vector, for multi-component callers). Reports whether an existing
// entry was evicted to make room. Uncacheable queries are dropped.
func (c *Cache) Put(ver uint64, vec []uint64, q query.Query, res colstore.ScanResult) (evicted bool) {
	if c == nil {
		return false
	}
	k, ok := keyOf(ver, q)
	if !ok {
		return false
	}
	var vcopy []uint64
	if len(vec) > 0 {
		vcopy = append([]uint64(nil), vec...)
	}
	s := &c.shards[k.shard()]
	s.mu.Lock()
	if _, exists := s.m[k]; !exists && len(s.m) >= c.perShard {
		// Evict: map iteration order is effectively random, so the first
		// few yielded entries are a cheap uniform sample. Prefer one whose
		// version is not the one being inserted — provably stale under
		// single-epoch keying, at worst a different hot epoch mix under
		// digested keying — else take any sampled entry.
		var victim key
		have := false
		n := 0
		for ek := range s.m {
			if !have || ek.ver != ver {
				victim, have = ek, true
			}
			n++
			if ek.ver != ver || n >= evictScan {
				break
			}
		}
		if have {
			delete(s.m, victim)
			evicted = true
		}
	}
	s.m[k] = entry{vec: vcopy, res: res}
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
	return evicted
}

// GetGrouped looks up a grouped query's result at version ver, with the
// same vector-verify contract as Get. The returned result is a deep
// copy: callers may hold or modify it without aliasing the cached
// groups slice.
func (c *Cache) GetGrouped(ver uint64, vec []uint64, q query.Query) (colstore.GroupedResult, bool) {
	if c == nil {
		return colstore.GroupedResult{}, false
	}
	k, ok := keyOf(ver, q)
	if !ok {
		c.misses.Add(1)
		return colstore.GroupedResult{}, false
	}
	s := &c.shards[k.shard()]
	s.mu.Lock()
	e, hit := s.m[k]
	s.mu.Unlock()
	if !hit || e.grouped == nil || !vecEqual(e.vec, vec) {
		c.misses.Add(1)
		return colstore.GroupedResult{}, false
	}
	c.hits.Add(1)
	return e.grouped.Clone(), true
}

// PutGrouped stores a grouped query's result computed at version ver.
// The entry keeps its own deep copy of the groups, so the caller's
// result remains independently usable. Eviction policy matches Put.
func (c *Cache) PutGrouped(ver uint64, vec []uint64, q query.Query, res colstore.GroupedResult) (evicted bool) {
	if c == nil {
		return false
	}
	k, ok := keyOf(ver, q)
	if !ok {
		return false
	}
	var vcopy []uint64
	if len(vec) > 0 {
		vcopy = append([]uint64(nil), vec...)
	}
	own := res.Clone()
	s := &c.shards[k.shard()]
	s.mu.Lock()
	if _, exists := s.m[k]; !exists && len(s.m) >= c.perShard {
		var victim key
		have := false
		n := 0
		for ek := range s.m {
			if !have || ek.ver != ver {
				victim, have = ek, true
			}
			n++
			if ek.ver != ver || n >= evictScan {
				break
			}
		}
		if have {
			delete(s.m, victim)
			evicted = true
		}
	}
	s.m[k] = entry{vec: vcopy, grouped: &own}
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
	return evicted
}

// Stats is a point-in-time view of the cache's counters and size.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// Stats reports hit/miss/eviction totals and the current entry count.
// Safe on a nil cache (all zeros).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}

// Len is the current number of cached entries. Safe on a nil cache.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

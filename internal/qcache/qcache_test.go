package qcache

import (
	"sync"
	"testing"

	"repro/internal/colstore"
	"repro/internal/query"
)

func q(filters ...query.Filter) query.Query {
	return query.NewCount(filters...)
}

func res(count uint64, sum int64) colstore.ScanResult {
	return colstore.ScanResult{Count: count, Sum: sum}
}

func TestPutGetRoundtrip(t *testing.T) {
	c := New(64)
	qa := q(query.Filter{Dim: 0, Lo: 1, Hi: 10})
	if _, ok := c.Get(7, nil, qa); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(7, nil, qa, res(42, 99))
	got, ok := c.Get(7, nil, qa)
	if !ok || got.Count != 42 || got.Sum != 99 {
		t.Fatalf("roundtrip: got %+v ok=%v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// Literal bounds are part of the identity — the property the wstats
// fingerprint deliberately lacks and the reason the cache does not key
// on it.
func TestLiteralBoundsDistinguishEntries(t *testing.T) {
	c := New(64)
	q10 := q(query.Filter{Dim: 2, Lo: query.NoLo, Hi: 10})
	q20 := q(query.Filter{Dim: 2, Lo: query.NoLo, Hi: 20})
	c.Put(1, nil, q10, res(10, 0))
	c.Put(1, nil, q20, res(20, 0))
	a, ok := c.Get(1, nil, q10)
	if !ok || a.Count != 10 {
		t.Fatalf("q10: %+v ok=%v", a, ok)
	}
	b, ok := c.Get(1, nil, q20)
	if !ok || b.Count != 20 {
		t.Fatalf("q20: %+v ok=%v", b, ok)
	}
}

func TestAggregateDistinguishesEntries(t *testing.T) {
	c := New(64)
	f := []query.Filter{{Dim: 0, Lo: 0, Hi: 5}}
	cnt := query.NewCount(f...)
	sum3 := query.NewSum(3, f...)
	sum4 := query.NewSum(4, f...)
	c.Put(1, nil, cnt, res(1, 0))
	c.Put(1, nil, sum3, res(2, 30))
	c.Put(1, nil, sum4, res(2, 40))
	if r, ok := c.Get(1, nil, cnt); !ok || r.Count != 1 {
		t.Fatalf("count entry: %+v ok=%v", r, ok)
	}
	if r, ok := c.Get(1, nil, sum3); !ok || r.Sum != 30 {
		t.Fatalf("sum3 entry: %+v ok=%v", r, ok)
	}
	if r, ok := c.Get(1, nil, sum4); !ok || r.Sum != 40 {
		t.Fatalf("sum4 entry: %+v ok=%v", r, ok)
	}
}

func TestEpochBumpInvalidates(t *testing.T) {
	c := New(64)
	qa := q(query.Filter{Dim: 1, Lo: 5, Hi: 5})
	c.Put(3, nil, qa, res(7, 0))
	if _, ok := c.Get(4, nil, qa); ok {
		t.Fatal("stale epoch served")
	}
	if r, ok := c.Get(3, nil, qa); !ok || r.Count != 7 {
		t.Fatal("current epoch entry lost")
	}
}

func TestVectorMismatchMisses(t *testing.T) {
	c := New(64)
	qa := q(query.Filter{Dim: 0, Lo: 0, Hi: 1})
	vec := []uint64{9, 0, 4, 1, 7}
	ver := Digest(vec)
	c.Put(ver, vec, qa, res(5, 0))
	if r, ok := c.Get(ver, vec, qa); !ok || r.Count != 5 {
		t.Fatalf("vector hit: %+v ok=%v", r, ok)
	}
	// Same digested version, different vector: must miss (this is the
	// collision-proofing path).
	other := []uint64{9, 0, 4, 1, 8}
	if _, ok := c.Get(ver, other, qa); ok {
		t.Fatal("hit on mismatched version vector")
	}
	if _, ok := c.Get(ver, nil, qa); ok {
		t.Fatal("hit with nil vector against stored vector")
	}
}

func TestUncacheableQueries(t *testing.T) {
	c := New(64)
	// Too many filters.
	wide := make([]query.Filter, maxFilters+1)
	for i := range wide {
		wide[i] = query.Filter{Dim: i, Lo: 0, Hi: 1}
	}
	c.Put(1, nil, query.Query{Agg: query.Count, Filters: wide}, res(1, 0))
	if c.Len() != 0 {
		t.Fatal("cached a too-wide query")
	}
	// Non-canonical filter order (hand-built query bypassing normalize).
	bad := query.Query{Agg: query.Count, Filters: []query.Filter{
		{Dim: 3, Lo: 0, Hi: 1}, {Dim: 1, Lo: 0, Hi: 1},
	}}
	c.Put(1, nil, bad, res(1, 0))
	if c.Len() != 0 {
		t.Fatal("cached a non-canonical query")
	}
	if _, ok := c.Get(1, nil, bad); ok {
		t.Fatal("hit for uncacheable query")
	}
}

func TestEvictionBoundsSizeAndPrefersStale(t *testing.T) {
	c := New(32)
	mk := func(i int) query.Query {
		return q(query.Filter{Dim: 0, Lo: int64(i), Hi: int64(i)})
	}
	// A stale-epoch entry per lock shard's worth, then flood with a newer
	// epoch: size must stay bounded and evictions must be counted.
	for i := 0; i < 16; i++ {
		c.Put(1, nil, mk(i), res(uint64(i), 0))
	}
	for i := 0; i < 500; i++ {
		c.Put(2, nil, mk(i), res(uint64(i), 0))
	}
	// Capacity rounds up per lock shard; allow that slack.
	if n := c.Len(); n > 32+nlocks {
		t.Fatalf("cache grew past capacity: %d entries", n)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("flood evicted nothing")
	}
	// Spot-check: current-epoch lookups still mostly work for the latest
	// inserts (the newest entries were inserted after eviction pressure).
	if _, ok := c.Get(2, nil, mk(499)); !ok {
		t.Fatal("most recent insert evicted immediately")
	}
}

func TestNilCacheNoOps(t *testing.T) {
	var c *Cache
	qa := q(query.Filter{Dim: 0, Lo: 0, Hi: 1})
	if _, ok := c.Get(1, nil, qa); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(1, nil, qa, res(1, 0))
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache len")
	}
	if New(0) != nil || New(-5) != nil {
		t.Fatal("New(<=0) must return the nil no-op cache")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				qa := q(query.Filter{Dim: w % 3, Lo: int64(i % 50), Hi: int64(i%50 + w)})
				ver := uint64(i % 4)
				if r, ok := c.Get(ver, nil, qa); ok {
					// Any hit must carry the value stored for exactly this
					// (ver, query) pair.
					want := uint64(ver*1000) + uint64(i%50)
					if r.Count != want {
						t.Errorf("stale or corrupt hit: got %d want %d", r.Count, want)
						return
					}
				} else {
					c.Put(ver, nil, qa, res(uint64(ver*1000)+uint64(i%50), 0))
				}
			}
		}()
	}
	wg.Wait()
}

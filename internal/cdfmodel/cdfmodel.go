// Package cdfmodel provides compact models of a column's cumulative
// distribution function. Flood and the Augmented Grid place a value into
// partition ⌊CDF(x)·p⌋ (§2.2), so the models here expose both the forward
// CDF and the inverse (quantile) needed to materialize partition boundaries.
//
// The paper notes the modeling technique is orthogonal (Flood uses an RMI,
// "but one could also use a histogram or linear regression"); we provide a
// two-layer RMI, an interpolated sample CDF, and an exact equi-depth model,
// all behind one interface.
package cdfmodel

import (
	"math"
	"sort"
)

// Model estimates the CDF of a single int64 column.
type Model interface {
	// At returns the estimated CDF at x, in [0, 1].
	At(x int64) float64
	// Quantile returns the smallest value v with CDF(v) >= q (approximately
	// for learned models). q outside [0,1] is clamped.
	Quantile(q float64) int64
	// SizeBytes reports the model's memory footprint, for index-size
	// accounting.
	SizeBytes() uint64
}

// Partition returns ⌊CDF(x)·p⌋ clamped to [0, p-1]: the grid partition a
// value falls in (§2.2).
func Partition(m Model, x int64, p int) int {
	i := int(m.At(x) * float64(p))
	if i < 0 {
		return 0
	}
	if i >= p {
		return p - 1
	}
	return i
}

// PartitionRange returns the inclusive partition index range [a, b]
// intersecting filter values [lo, hi].
func PartitionRange(m Model, lo, hi int64, p int) (int, int) {
	a := Partition(m, lo, p)
	b := Partition(m, hi, p)
	if b < a {
		b = a
	}
	return a, b
}

// Boundaries materializes the p+1 partition boundary values of an
// equi-CDF partitioning: boundary i is Quantile(i/p). Boundaries are
// non-decreasing.
func Boundaries(m Model, p int) []int64 {
	out := make([]int64, p+1)
	for i := 0; i <= p; i++ {
		out[i] = m.Quantile(float64(i) / float64(p))
		if i > 0 && out[i] < out[i-1] {
			out[i] = out[i-1]
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// SampleCDF: sorted-sample interpolation.

// SampleCDF models the CDF by a sorted sample with linear interpolation
// between sample points. With sampleSize == n it is exact.
type SampleCDF struct {
	sample []int64 // sorted
}

// NewSample builds a SampleCDF from values, keeping at most sampleSize
// evenly-spaced order statistics (all values if sampleSize <= 0 or >= n).
func NewSample(values []int64, sampleSize int) *SampleCDF {
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if sampleSize <= 0 || sampleSize >= len(sorted) || len(sorted) == 0 {
		return &SampleCDF{sample: sorted}
	}
	out := make([]int64, 0, sampleSize+1)
	for i := 0; i < sampleSize; i++ {
		idx := i * (len(sorted) - 1) / (sampleSize - 1)
		out = append(out, sorted[idx])
	}
	return &SampleCDF{sample: out}
}

// At returns the interpolated empirical CDF at x.
func (s *SampleCDF) At(x int64) float64 {
	n := len(s.sample)
	if n == 0 {
		return 0
	}
	// Rank of x: number of sample values <= x, interpolated.
	i := sort.Search(n, func(i int) bool { return s.sample[i] > x })
	if i == 0 {
		return 0
	}
	if i == n {
		return 1
	}
	// Linear interpolation between sample[i-1] and sample[i].
	lo, hi := s.sample[i-1], s.sample[i]
	frac := 0.0
	if hi > lo {
		frac = float64(x-lo) / float64(hi-lo)
	}
	return (float64(i-1) + frac + 1) / float64(n)
}

// Quantile returns the sample order statistic at q.
func (s *SampleCDF) Quantile(q float64) int64 {
	n := len(s.sample)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return s.sample[0]
	}
	if q >= 1 {
		return s.sample[n-1] + 1
	}
	idx := int(q * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return s.sample[idx]
}

// SizeBytes reports the sample footprint.
func (s *SampleCDF) SizeBytes() uint64 { return uint64(len(s.sample)) * 8 }

// ---------------------------------------------------------------------------
// RMI: two-layer recursive model index over the CDF.

// RMI is a two-layer recursive model index [Kraska et al. 2018]: a linear
// root model dispatches a key to one of L linear leaf models, each fit on
// its share of the sorted data. It models rank/n, i.e. the CDF.
type RMI struct {
	n         int
	rootSlope float64
	rootBias  float64
	leaves    []linModel
	min, max  int64
}

type linModel struct {
	slope, bias float64 // predicts rank from key
}

// NewRMI fits a two-layer RMI with numLeaves leaf models on values.
func NewRMI(values []int64, numLeaves int) *RMI {
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	r := &RMI{n: n}
	if n == 0 {
		r.leaves = []linModel{{}}
		return r
	}
	if numLeaves < 1 {
		numLeaves = 1
	}
	if numLeaves > n {
		numLeaves = n
	}
	r.min, r.max = sorted[0], sorted[n-1]
	// Root model: linear map from key to leaf index.
	span := float64(r.max - r.min)
	if span <= 0 {
		span = 1
	}
	r.rootSlope = float64(numLeaves) / span
	r.rootBias = -r.rootSlope * float64(r.min)

	// Assign each key to a leaf via the root model, then fit each leaf with
	// least squares on (key, rank).
	r.leaves = make([]linModel, numLeaves)
	starts := make([]int, numLeaves+1)
	leafOf := func(x int64) int {
		i := int(r.rootSlope*float64(x) + r.rootBias)
		if i < 0 {
			return 0
		}
		if i >= numLeaves {
			return numLeaves - 1
		}
		return i
	}
	// sorted keys map to non-decreasing leaves, so find boundaries.
	cur := 0
	for i := 0; i < n; i++ {
		l := leafOf(sorted[i])
		for cur < l {
			cur++
			starts[cur] = i
		}
	}
	for cur < numLeaves {
		cur++
		starts[cur] = n
	}
	for l := 0; l < numLeaves; l++ {
		a, b := starts[l], starts[l+1]
		r.leaves[l] = fitRanks(sorted, a, b)
	}
	return r
}

// fitRanks fits rank ≈ slope*key + bias on sorted[a:b] (ranks a..b-1).
func fitRanks(sorted []int64, a, b int) linModel {
	m := b - a
	if m <= 0 {
		return linModel{}
	}
	if m == 1 {
		return linModel{slope: 0, bias: float64(a)}
	}
	var sx, sy, sxx, sxy float64
	for i := a; i < b; i++ {
		x, y := float64(sorted[i]), float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fm := float64(m)
	den := fm*sxx - sx*sx
	if den == 0 {
		return linModel{slope: 0, bias: sy / fm}
	}
	slope := (fm*sxy - sx*sy) / den
	return linModel{slope: slope, bias: (sy - slope*sx) / fm}
}

// At returns the modeled CDF at x.
func (r *RMI) At(x int64) float64 {
	if r.n == 0 {
		return 0
	}
	if x < r.min {
		return 0
	}
	if x >= r.max {
		return 1
	}
	li := int(r.rootSlope*float64(x) + r.rootBias)
	if li < 0 {
		li = 0
	}
	if li >= len(r.leaves) {
		li = len(r.leaves) - 1
	}
	lm := r.leaves[li]
	rank := lm.slope*float64(x) + lm.bias
	cdf := rank / float64(r.n)
	if cdf < 0 {
		return 0
	}
	if cdf > 1 {
		return 1
	}
	return cdf
}

// Quantile inverts the model by binary search over the key domain; the RMI
// CDF is monotone in x by construction of clamped leaf outputs only
// approximately, so the search uses the monotone envelope.
func (r *RMI) Quantile(q float64) int64 {
	if r.n == 0 {
		return 0
	}
	if q <= 0 {
		return r.min
	}
	if q >= 1 {
		return r.max + 1
	}
	lo, hi := r.min, r.max
	for lo < hi {
		mid := lo + (hi-lo)/2
		if r.At(mid) < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SizeBytes reports the model footprint: root + leaves.
func (r *RMI) SizeBytes() uint64 { return 16 + uint64(len(r.leaves))*16 + 16 }

// MaxAbsError returns the maximum |modeled CDF - empirical CDF| over values,
// for model-quality tests.
func (r *RMI) MaxAbsError(values []int64) float64 {
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	worst := 0.0
	for i, v := range sorted {
		emp := float64(i+1) / float64(len(sorted))
		if e := math.Abs(r.At(v) - emp); e > worst {
			worst = e
		}
	}
	return worst
}

package cdfmodel

import (
	"math"
	"sort"
)

// The paper notes the CDF modeling technique is orthogonal (§2.2): "Flood
// uses an RMI, but one could also use a histogram or linear regression."
// This file provides those two alternatives plus a selector that picks the
// smallest model meeting an accuracy target, so the trade-off is
// measurable rather than assumed.

// LinearCDF models the CDF as a straight line between the observed min and
// max — two floats, the smallest possible model. Exact for uniform data,
// poor for skewed data.
type LinearCDF struct {
	min, max int64
	n        int
}

// NewLinear fits a linear CDF.
func NewLinear(values []int64) *LinearCDF {
	m := &LinearCDF{}
	m.n = len(values)
	if m.n == 0 {
		return m
	}
	m.min, m.max = values[0], values[0]
	for _, v := range values {
		if v < m.min {
			m.min = v
		}
		if v > m.max {
			m.max = v
		}
	}
	return m
}

// At implements Model.
func (m *LinearCDF) At(x int64) float64 {
	if m.n == 0 || x < m.min {
		return 0
	}
	if x >= m.max {
		return 1
	}
	return float64(x-m.min) / float64(m.max-m.min)
}

// Quantile implements Model.
func (m *LinearCDF) Quantile(q float64) int64 {
	if m.n == 0 {
		return 0
	}
	if q <= 0 {
		return m.min
	}
	if q >= 1 {
		return m.max + 1
	}
	return m.min + int64(q*float64(m.max-m.min))
}

// SizeBytes implements Model.
func (m *LinearCDF) SizeBytes() uint64 { return 16 }

// HistogramCDF models the CDF as an equi-width histogram with cumulative
// counts — robust for moderately skewed data at a fixed budget.
type HistogramCDF struct {
	min, width int64
	cum        []float64 // cum[i] = fraction of values below bucket i
	n          int
}

// NewHistogram fits an equi-width cumulative histogram with buckets bins.
func NewHistogram(values []int64, buckets int) *HistogramCDF {
	m := &HistogramCDF{n: len(values)}
	if m.n == 0 || buckets < 1 {
		m.cum = []float64{0}
		m.width = 1
		return m
	}
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	m.min = min
	span := max - min + 1
	m.width = (span + int64(buckets) - 1) / int64(buckets)
	if m.width < 1 {
		m.width = 1
	}
	counts := make([]float64, buckets+1)
	for _, v := range values {
		b := int((v - min) / m.width)
		if b >= buckets {
			b = buckets - 1
		}
		counts[b+1]++
	}
	for i := 1; i <= buckets; i++ {
		counts[i] = counts[i-1] + counts[i]/float64(m.n)
	}
	m.cum = counts
	return m
}

// At implements Model with intra-bucket linear interpolation.
func (m *HistogramCDF) At(x int64) float64 {
	if m.n == 0 {
		return 0
	}
	if x < m.min {
		return 0
	}
	b := int((x - m.min) / m.width)
	if b >= len(m.cum)-1 {
		return 1
	}
	frac := float64((x-m.min)%m.width) / float64(m.width)
	return m.cum[b] + (m.cum[b+1]-m.cum[b])*frac
}

// Quantile implements Model by binary search over buckets.
func (m *HistogramCDF) Quantile(q float64) int64 {
	if m.n == 0 {
		return 0
	}
	if q <= 0 {
		return m.min
	}
	if q >= 1 {
		return m.min + m.width*int64(len(m.cum)-1) + 1
	}
	b := sort.Search(len(m.cum), func(i int) bool { return m.cum[i] >= q }) - 1
	if b < 0 {
		b = 0
	}
	if b >= len(m.cum)-1 {
		b = len(m.cum) - 2
	}
	span := m.cum[b+1] - m.cum[b]
	frac := 0.0
	if span > 0 {
		frac = (q - m.cum[b]) / span
	}
	return m.min + m.width*int64(b) + int64(frac*float64(m.width))
}

// SizeBytes implements Model.
func (m *HistogramCDF) SizeBytes() uint64 { return 16 + uint64(len(m.cum))*8 }

// MaxAbsError measures a model's worst CDF deviation on values.
func MaxAbsError(m Model, values []int64) float64 {
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	worst := 0.0
	for i, v := range sorted {
		emp := float64(i+1) / float64(len(sorted))
		if e := math.Abs(m.At(v) - emp); e > worst {
			worst = e
		}
	}
	return worst
}

// Select fits, in increasing size order, a linear CDF, a histogram, and an
// RMI, returning the first whose max CDF error on a sample is within tol —
// an instance-optimized model choice in the learned-index spirit.
func Select(values []int64, tol float64) Model {
	sample := values
	if len(sample) > 4096 {
		stride := len(values) / 4096
		sample = make([]int64, 0, 4096)
		for i := 0; i < len(values); i += stride {
			sample = append(sample, values[i])
		}
	}
	if m := NewLinear(values); MaxAbsError(m, sample) <= tol {
		return m
	}
	if m := NewHistogram(values, 64); MaxAbsError(m, sample) <= tol {
		return m
	}
	return NewRMI(values, 256)
}

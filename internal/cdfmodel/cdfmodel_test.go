package cdfmodel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func uniformValues(n int, rng *rand.Rand) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(1_000_000)
	}
	return out
}

func skewedValues(n int, rng *rand.Rand) []int64 {
	out := make([]int64, n)
	for i := range out {
		v := rng.NormFloat64()*1000 + 5000
		if v < 0 {
			v = 0
		}
		out[i] = int64(v * v) // heavy right tail
	}
	return out
}

func TestSampleCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := skewedValues(5000, rng)
	m := NewSample(vals, 512)
	prev := -1.0
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	step := (hi - lo) / 1000
	if step == 0 {
		step = 1
	}
	for x := lo; x <= hi; x += step {
		c := m.At(x)
		if c < prev {
			t.Fatalf("CDF not monotone at %d: %f < %f", x, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of range at %d: %f", x, c)
		}
		prev = c
	}
}

func TestSampleCDFExactAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := uniformValues(2000, rng)
	m := NewSample(vals, 0) // exact
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 0; i < len(sorted); i += 97 {
		emp := float64(i+1) / float64(len(sorted))
		got := m.At(sorted[i])
		if diff := got - emp; diff > 0.01 || diff < -0.01 {
			t.Fatalf("CDF at rank %d: got %f, want ≈%f", i, got, emp)
		}
	}
}

func TestBoundariesEquiDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := skewedValues(20000, rng)
	m := NewSample(vals, 0)
	p := 16
	b := Boundaries(m, p)
	if len(b) != p+1 {
		t.Fatalf("boundaries len = %d, want %d", len(b), p+1)
	}
	for i := 1; i <= p; i++ {
		if b[i] < b[i-1] {
			t.Fatalf("boundaries not monotone at %d", i)
		}
	}
	// Each partition should hold roughly n/p points.
	counts := make([]int, p)
	for _, v := range vals {
		i := sort.Search(len(b), func(i int) bool { return b[i] > v }) - 1
		if i < 0 {
			i = 0
		}
		if i >= p {
			i = p - 1
		}
		counts[i]++
	}
	want := len(vals) / p
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("partition %d count = %d, want ≈%d (equi-depth violated)", i, c, want)
		}
	}
}

func TestPartitionClamped(t *testing.T) {
	m := NewSample([]int64{10, 20, 30}, 0)
	if p := Partition(m, -100, 4); p != 0 {
		t.Errorf("below-domain partition = %d, want 0", p)
	}
	if p := Partition(m, 1000, 4); p != 3 {
		t.Errorf("above-domain partition = %d, want 3", p)
	}
}

func TestPartitionRangeOrdered(t *testing.T) {
	prop := func(seed int64, lo, hi int32) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewSample(uniformValues(200, rng), 0)
		l, h := int64(lo), int64(hi)
		if l > h {
			l, h = h, l
		}
		a, b := PartitionRange(m, l, h, 8)
		return a >= 0 && b >= a && b < 8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRMIMonotoneAndAccurate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, gen := range []func(int, *rand.Rand) []int64{uniformValues, skewedValues} {
		vals := gen(10000, rng)
		m := NewRMI(vals, 64)
		if err := m.MaxAbsError(vals); err > 0.05 {
			t.Errorf("RMI max CDF error = %f, want <= 0.05", err)
		}
		if m.At(m.min-1) != 0 {
			t.Error("CDF below min should be 0")
		}
		if m.At(m.max+1) != 1 {
			t.Error("CDF above max should be 1")
		}
	}
}

func TestRMIQuantileInverts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := uniformValues(5000, rng)
	m := NewRMI(vals, 64)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		v := m.Quantile(q)
		got := m.At(v)
		if diff := got - q; diff > 0.05 || diff < -0.05 {
			t.Errorf("At(Quantile(%f)) = %f", q, got)
		}
	}
}

func TestRMIEmptyAndTiny(t *testing.T) {
	m := NewRMI(nil, 8)
	if m.At(5) != 0 || m.Quantile(0.5) != 0 {
		t.Error("empty RMI should return zeros")
	}
	m1 := NewRMI([]int64{42}, 8)
	if m1.At(42) != 1 {
		t.Errorf("single-value RMI At(42) = %f, want 1", m1.At(42))
	}
}

func TestRMISmallerThanSample(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vals := uniformValues(100000, rng)
	rmi := NewRMI(vals, 64)
	exact := NewSample(vals, 0)
	if rmi.SizeBytes() >= exact.SizeBytes() {
		t.Errorf("RMI (%dB) should be far smaller than exact CDF (%dB)",
			rmi.SizeBytes(), exact.SizeBytes())
	}
}

func TestBoundariesOfConstantColumn(t *testing.T) {
	vals := []int64{7, 7, 7, 7}
	m := NewSample(vals, 0)
	b := Boundaries(m, 4)
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatal("constant column boundaries must be monotone")
		}
	}
}

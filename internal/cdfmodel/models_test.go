package cdfmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearCDFExactOnUniform(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i) * 100
	}
	m := NewLinear(vals)
	if err := MaxAbsError(m, vals); err > 0.01 {
		t.Errorf("linear CDF error on uniform grid = %f", err)
	}
}

func TestLinearCDFPoorOnSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := skewedValues(10000, rng)
	lin := NewLinear(vals)
	rmi := NewRMI(vals, 128)
	if MaxAbsError(lin, vals) < MaxAbsError(rmi, vals) {
		t.Error("linear CDF should lose to RMI on skewed data")
	}
}

func TestHistogramCDFMonotoneAndAccurate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := skewedValues(20000, rng)
	m := NewHistogram(vals, 128)
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	prev := -1.0
	step := (hi - lo) / 500
	if step < 1 {
		step = 1
	}
	for x := lo; x <= hi; x += step {
		c := m.At(x)
		if c < prev-1e-12 {
			t.Fatalf("histogram CDF not monotone at %d", x)
		}
		prev = c
	}
	if err := MaxAbsError(m, vals); err > 0.08 {
		t.Errorf("histogram CDF error = %f, want <= 0.08", err)
	}
}

func TestHistogramQuantileInverts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := uniformValues(10000, rng)
	m := NewHistogram(vals, 64)
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		v := m.Quantile(q)
		got := m.At(v)
		if got < q-0.06 || got > q+0.06 {
			t.Errorf("At(Quantile(%f)) = %f", q, got)
		}
	}
}

func TestModelsHandleEmptyAndConstant(t *testing.T) {
	for _, m := range []Model{
		NewLinear(nil), NewHistogram(nil, 8),
		NewLinear([]int64{7, 7, 7}), NewHistogram([]int64{7, 7, 7}, 8),
	} {
		if c := m.At(7); c < 0 || c > 1 {
			t.Errorf("At out of range: %f", c)
		}
		_ = m.Quantile(0.5)
		if m.SizeBytes() == 0 {
			t.Error("zero model size")
		}
	}
}

func TestSelectPicksSmallSufficientModel(t *testing.T) {
	// Uniform data: linear suffices at loose tolerance.
	uni := make([]int64, 20000)
	for i := range uni {
		uni[i] = int64(i)
	}
	if _, ok := Select(uni, 0.05).(*LinearCDF); !ok {
		t.Error("uniform data should select the linear model")
	}
	// Heavily skewed data at tight tolerance: needs the RMI.
	rng := rand.New(rand.NewSource(4))
	sk := skewedValues(20000, rng)
	m := Select(sk, 0.01)
	if _, ok := m.(*LinearCDF); ok {
		t.Error("skewed data at 1% tolerance should not select linear")
	}
	if err := MaxAbsError(m, sk); err > 0.05 {
		t.Errorf("selected model error = %f", err)
	}
}

func TestModelInterfaceQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := skewedValues(5000, rng)
	models := []Model{NewLinear(vals), NewHistogram(vals, 64), NewRMI(vals, 64), NewSample(vals, 512)}
	prop := func(a, b uint8) bool {
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		for _, m := range models {
			if m.Quantile(qa) > m.Quantile(qb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

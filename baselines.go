package tsunami

import (
	"repro/internal/auggrid"
	"repro/internal/flood"
	"repro/internal/index"
	"repro/internal/kdtree"
	"repro/internal/octree"
	"repro/internal/singledim"
	"repro/internal/zindex"
)

// The paper evaluates Tsunami against five baselines over the same column
// store (§6.1). Each constructor clones the table and clusters its own copy.

// FloodIndex is a built Flood index (the learned baseline Tsunami extends).
type FloodIndex = flood.Index

// NewFlood builds Flood: a single learned grid with independent CDF
// partitioning per dimension, optimized for the workload with Tsunami's
// cost model (the §6.1 modified Flood).
func NewFlood(table *Table, workload []Query, o Options) *FloodIndex {
	return flood.Build(table, workload, flood.Config{Grid: auggrid.OptimizeConfig{
		Eval: auggrid.EvalConfig{
			SampleSize: o.SampleSize,
			MaxQueries: o.MaxOptQueries,
			Seed:       o.Seed,
		},
		MaxCells: o.MaxCells,
		MaxIters: o.OptimizerIters,
		Seed:     o.Seed,
	}})
}

// NewKDTree builds the k-d tree baseline: median splits, dimensions cycled
// in workload-selectivity order, leaves of at most pageSize points
// (pageSize <= 0 uses 4096).
func NewKDTree(table *Table, workload []Query, pageSize int) Index {
	return kdtree.Build(table, workload, kdtree.Config{PageSize: pageSize})
}

// NewHyperoctree builds the hyperoctree baseline: equal 2^d subdivision
// until leaves hold at most pageSize points.
func NewHyperoctree(table *Table, pageSize int) Index {
	return octree.Build(table, octree.Config{PageSize: pageSize})
}

// NewZOrder builds the Z-order baseline: points ordered by bit-interleaved
// quantized coordinates, grouped into pages with min/max metadata.
func NewZOrder(table *Table, pageSize int) Index {
	return zindex.Build(table, zindex.Config{PageSize: pageSize})
}

// NewSingleDim builds the clustered single-dimensional baseline: data
// sorted by the workload's most selective dimension (or byDim if >= 0).
func NewSingleDim(table *Table, workload []Query, byDim int) Index {
	return singledim.Build(table, workload, byDim)
}

// NewFullScan wraps the table in the trivial scan-everything index, the
// ground truth for tests.
func NewFullScan(table *Table) Index {
	return index.NewFullScan(table)
}

package tsunami

import (
	"net/http"

	"repro/internal/obs"
)

// This file exposes the observability layer (internal/obs): a
// dependency-free, allocation-free metrics registry every serving
// component records into, plus the HTTP surface that serves it.
//
// One registry is typically shared across the whole stack —
//
//	m := tsunami.NewMetrics()
//	ls := tsunami.NewLiveStore(idx, work, tsunami.LiveOptions{Metrics: m})
//	ex := tsunami.NewExecutor(ls, tsunami.ExecutorOptions{Metrics: m})
//	go http.ListenAndServe("127.0.0.1:9100", tsunami.MetricsHandler(m))
//
// — so a single endpoint sees executor queue depth and wait, per-query
// latency histograms (p50/p95/p99/p999), rows and bytes scanned (live
// Mrows/s and GB/s), ingest and merge timings, and shard routing
// telemetry. A nil registry anywhere disables instrumentation with zero
// hot-path cost.

// Metrics is a named registry of lock-free counters, gauges, and
// log-bucketed latency histograms. Recording is allocation-free and
// striped against cache-line contention; scraping (Snapshot, /metrics)
// never blocks recorders.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time copy of every instrument in a
// registry; snapshots diff (interval rates) and their histograms merge
// across shards.
type MetricsSnapshot = obs.Snapshot

// NewMetrics returns an empty metrics registry, ready to be passed to
// LiveOptions.Metrics, ShardedOptions.Metrics, or ExecutorOptions.Metrics.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// MetricsHandler serves m over HTTP: Prometheus text exposition at
// /metrics, a JSON quantile summary at /statsz, and net/http/pprof under
// /debug/pprof/.
func MetricsHandler(m *Metrics) http.Handler { return obs.Handler(m) }

// QueryTrace is one query's explain-analyze record: stage timings
// (plan/route/scan/merge), per-shard breakdowns for scatter-gather
// queries, and the scan volume behind the answer. Produced by the
// ExecuteTrace methods on TsunamiIndex, LiveStore, and ShardedStore;
// rendered by its String method (also: the tsunami-cli `trace` command).
type QueryTrace = obs.QueryTrace

// TraceStage is one named, timed phase of a QueryTrace.
type TraceStage = obs.TraceStage

// ShardSpan is one shard's contribution to a scatter-gather QueryTrace.
type ShardSpan = obs.ShardSpan

// Concurrency contract tests: one shared index per test, no clones, many
// goroutines. Run with -race these prove the entire read path — Tsunami and
// every baseline — keeps no shared mutable per-query state, and that the
// Executor's batch and intra-query paths match sequential execution.
package tsunami_test

import (
	"runtime"
	"sync"
	"testing"

	tsunami "repro"
)

// concurrencySetup builds a dataset, a workload, and the FullScan ground
// truth for the probe queries.
func concurrencySetup(t *testing.T, rows int, seed int64) (*tsunami.Dataset, []tsunami.Query, []tsunami.Query, []uint64) {
	t.Helper()
	ds := tsunami.GenerateTaxi(rows, seed)
	work := tsunami.WorkloadFor(ds, 20, seed+1)
	probe := tsunami.WorkloadFor(ds, 8, seed+2)
	full := tsunami.NewFullScan(ds.Store)
	want := make([]uint64, len(probe))
	for i, q := range probe {
		want[i] = full.Execute(q).Count
	}
	return ds, work, probe, want
}

// hammer issues the probe queries from `readers` goroutines against one
// shared index and checks every answer.
func hammer(t *testing.T, idx tsunami.Index, probe []tsunami.Query, want []uint64) {
	t.Helper()
	const readers = 8
	const passes = 4
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < passes; pass++ {
				for i, q := range probe {
					if got := idx.Execute(q).Count; got != want[i] {
						errs <- q.String()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for q := range errs {
		t.Errorf("%s: concurrent reader got a wrong answer on %s", idx.Name(), q)
	}
}

// TestConcurrentExecuteSharedIndexes covers every index in the repository:
// a single shared instance each, queried by 8 goroutines with no cloning.
func TestConcurrentExecuteSharedIndexes(t *testing.T) {
	ds, work, probe, want := concurrencySetup(t, 12_000, 11)
	o := smallOptions()

	indexes := []tsunami.Index{
		tsunami.New(ds.Store, work, o),
		tsunami.NewAugGridOnly(ds.Store, work, o),
		tsunami.NewGridTreeOnly(ds.Store, work, o),
		tsunami.NewFlood(ds.Store, work, o),
		tsunami.NewKDTree(ds.Store, work, 2048),
		tsunami.NewHyperoctree(ds.Store, 2048),
		tsunami.NewZOrder(ds.Store, 2048),
		tsunami.NewSingleDim(ds.Store, work, -1),
		tsunami.NewFullScan(ds.Store),
	}
	for _, idx := range indexes {
		idx := idx
		t.Run(idx.Name(), func(t *testing.T) {
			t.Parallel()
			hammer(t, idx, probe, want)
		})
	}
}

// TestExecuteBatchMatchesSequential is the Executor correctness test:
// batch results must be positionally identical to sequential Execute and
// to the FullScan ground truth, at several worker counts.
func TestExecuteBatchMatchesSequential(t *testing.T) {
	ds, work, probe, want := concurrencySetup(t, 10_000, 21)
	idx := tsunami.New(ds.Store, work, smallOptions())

	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: workers})
		got := ex.ExecuteBatch(probe)
		if len(got) != len(probe) {
			t.Fatalf("workers=%d: got %d results for %d queries", workers, len(got), len(probe))
		}
		for i, q := range probe {
			if seq := idx.Execute(q); got[i] != seq {
				t.Errorf("workers=%d query %s: batch %+v != sequential %+v", workers, q, got[i], seq)
			}
			if got[i].Count != want[i] {
				t.Errorf("workers=%d query %s: batch count %d != full scan %d", workers, q, got[i].Count, want[i])
			}
		}
		ex.Close()
		ex.Close() // Close is idempotent
	}
}

// TestExecutorBatchFromManyGoroutines checks the pool fair-shares between
// concurrent ExecuteBatch callers (a serving frontend's shape).
func TestExecutorBatchFromManyGoroutines(t *testing.T) {
	ds, work, probe, want := concurrencySetup(t, 8_000, 31)
	idx := tsunami.New(ds.Store, work, smallOptions())
	ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: 4})
	defer ex.Close()

	const callers = 6
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := ex.ExecuteBatch(probe)
			for i := range probe {
				if res[i].Count != want[i] {
					errs <- probe[i].String()
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for q := range errs {
		t.Errorf("concurrent batch caller got a wrong answer on %s", q)
	}
}

// TestExecutorAfterCloseIsSafe is the regression test for the post-Close
// contract: Execute and ExecuteBatch on a closed Executor are no-ops
// returning zero Results, not sends on a closed channel.
func TestExecutorAfterCloseIsSafe(t *testing.T) {
	ds, work, probe, _ := concurrencySetup(t, 6_000, 51)
	idx := tsunami.New(ds.Store, work, smallOptions())

	for _, intra := range []bool{false, true} {
		ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: 2, IntraQuery: intra})
		ex.Close()
		if got := ex.Execute(probe[0]); got != (tsunami.Result{}) {
			t.Errorf("intra=%v: Execute after Close = %+v, want zero", intra, got)
		}
		res := ex.ExecuteBatch(probe)
		if len(res) != len(probe) {
			t.Fatalf("intra=%v: %d results for %d queries", intra, len(res), len(probe))
		}
		for i, r := range res {
			if r != (tsunami.Result{}) {
				t.Errorf("intra=%v: batch result %d after Close = %+v, want zero", intra, i, r)
			}
		}
		ex.Close() // still idempotent
	}
}

// TestExecuteBatchWaves checks adaptive batch sizing: a batch much larger
// than MaxWave is processed in pool-sized waves with results positionally
// identical to sequential execution.
func TestExecuteBatchWaves(t *testing.T) {
	ds, work, probe, _ := concurrencySetup(t, 8_000, 61)
	idx := tsunami.New(ds.Store, work, smallOptions())

	// 8 probes tiled to a 200-query batch against MaxWave 16.
	big := make([]tsunami.Query, 200)
	for i := range big {
		big[i] = probe[i%len(probe)]
	}
	ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: 4, MaxWave: 16})
	defer ex.Close()
	got := ex.ExecuteBatch(big)
	if len(got) != len(big) {
		t.Fatalf("got %d results for %d queries", len(got), len(big))
	}
	for i, q := range big {
		if seq := idx.Execute(q); got[i] != seq {
			t.Errorf("query %d (%s): wave batch %+v != sequential %+v", i, q, got[i], seq)
		}
	}
}

// TestExecutorOverLiveStore checks the serving composition: an Executor
// whose queries resolve through a LiveStore pick up epoch swaps — rows
// inserted (and merged) after the pool started are visible to later
// batches, with no pool restart.
func TestExecutorOverLiveStore(t *testing.T) {
	ds, work, probe, want := concurrencySetup(t, 8_000, 71)
	idx := tsunami.New(ds.Store, work, smallOptions())
	ls := tsunami.NewLiveStore(idx, nil, tsunami.LiveOptions{MergeThreshold: 64})
	defer ls.Close()

	// A LiveStore is both an Index and an IndexSource; both compositions
	// must track epochs (Execute resolves the current epoch per call).
	exIdx := tsunami.NewExecutor(ls, tsunami.ExecutorOptions{Workers: 4})
	defer exIdx.Close()
	exSrc := tsunami.NewExecutorSource(ls, tsunami.ExecutorOptions{Workers: 4})
	defer exSrc.Close()

	for name, ex := range map[string]*tsunami.Executor{"index": exIdx, "source": exSrc} {
		res := ex.ExecuteBatch(probe)
		for i := range probe {
			if res[i].Count != want[i] {
				t.Errorf("%s executor pre-insert on %s: %d, want %d", name, probe[i], res[i].Count, want[i])
			}
		}
	}

	// Insert rows matching probe[0] and wait for them through the pools.
	d := ds.Store.NumDims()
	target := probe[0]
	row := make([]int64, d)
	for j := 0; j < d; j++ {
		lo, _ := ds.Store.MinMax(j)
		row[j] = lo
	}
	for _, f := range target.Filters {
		row[f.Dim] = f.Lo
	}
	const extra = 100
	for i := 0; i < extra; i++ {
		if err := ls.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := ls.Flush(); err != nil { // force the merge so a new epoch is live
		t.Fatal(err)
	}
	for name, ex := range map[string]*tsunami.Executor{"index": exIdx, "source": exSrc} {
		got := ex.ExecuteBatch([]tsunami.Query{target})[0].Count
		if got != want[0]+extra {
			t.Errorf("%s executor post-swap on %s: %d, want %d", name, target, got, want[0]+extra)
		}
	}
}

// TestExecutorIntraQuery checks the intra-query path: splitting one query's
// regions across workers must produce the sequential answer, including on
// baselines that don't support splitting (where it falls back).
func TestExecutorIntraQuery(t *testing.T) {
	ds, work, probe, want := concurrencySetup(t, 10_000, 41)

	for _, idx := range []tsunami.Index{
		tsunami.New(ds.Store, work, smallOptions()),
		tsunami.NewKDTree(ds.Store, work, 2048), // no intra-query support: fallback path
	} {
		ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: 4, IntraQuery: true})
		for i, q := range probe {
			if got := ex.Execute(q).Count; got != want[i] {
				t.Errorf("%s intra-query on %s: got %d, want %d", idx.Name(), q, got, want[i])
			}
		}
		ex.Close()
	}
}

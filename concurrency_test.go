// Concurrency contract tests: one shared index per test, no clones, many
// goroutines. Run with -race these prove the entire read path — Tsunami and
// every baseline — keeps no shared mutable per-query state, and that the
// Executor's batch and intra-query paths match sequential execution.
package tsunami_test

import (
	"runtime"
	"sync"
	"testing"

	tsunami "repro"
)

// concurrencySetup builds a dataset, a workload, and the FullScan ground
// truth for the probe queries.
func concurrencySetup(t *testing.T, rows int, seed int64) (*tsunami.Dataset, []tsunami.Query, []tsunami.Query, []uint64) {
	t.Helper()
	ds := tsunami.GenerateTaxi(rows, seed)
	work := tsunami.WorkloadFor(ds, 20, seed+1)
	probe := tsunami.WorkloadFor(ds, 8, seed+2)
	full := tsunami.NewFullScan(ds.Store)
	want := make([]uint64, len(probe))
	for i, q := range probe {
		want[i] = full.Execute(q).Count
	}
	return ds, work, probe, want
}

// hammer issues the probe queries from `readers` goroutines against one
// shared index and checks every answer.
func hammer(t *testing.T, idx tsunami.Index, probe []tsunami.Query, want []uint64) {
	t.Helper()
	const readers = 8
	const passes = 4
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < passes; pass++ {
				for i, q := range probe {
					if got := idx.Execute(q).Count; got != want[i] {
						errs <- q.String()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for q := range errs {
		t.Errorf("%s: concurrent reader got a wrong answer on %s", idx.Name(), q)
	}
}

// TestConcurrentExecuteSharedIndexes covers every index in the repository:
// a single shared instance each, queried by 8 goroutines with no cloning.
func TestConcurrentExecuteSharedIndexes(t *testing.T) {
	ds, work, probe, want := concurrencySetup(t, 12_000, 11)
	o := smallOptions()

	indexes := []tsunami.Index{
		tsunami.New(ds.Store, work, o),
		tsunami.NewAugGridOnly(ds.Store, work, o),
		tsunami.NewGridTreeOnly(ds.Store, work, o),
		tsunami.NewFlood(ds.Store, work, o),
		tsunami.NewKDTree(ds.Store, work, 2048),
		tsunami.NewHyperoctree(ds.Store, 2048),
		tsunami.NewZOrder(ds.Store, 2048),
		tsunami.NewSingleDim(ds.Store, work, -1),
		tsunami.NewFullScan(ds.Store),
	}
	for _, idx := range indexes {
		idx := idx
		t.Run(idx.Name(), func(t *testing.T) {
			t.Parallel()
			hammer(t, idx, probe, want)
		})
	}
}

// TestExecuteBatchMatchesSequential is the Executor correctness test:
// batch results must be positionally identical to sequential Execute and
// to the FullScan ground truth, at several worker counts.
func TestExecuteBatchMatchesSequential(t *testing.T) {
	ds, work, probe, want := concurrencySetup(t, 10_000, 21)
	idx := tsunami.New(ds.Store, work, smallOptions())

	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: workers})
		got := ex.ExecuteBatch(probe)
		if len(got) != len(probe) {
			t.Fatalf("workers=%d: got %d results for %d queries", workers, len(got), len(probe))
		}
		for i, q := range probe {
			if seq := idx.Execute(q); got[i] != seq {
				t.Errorf("workers=%d query %s: batch %+v != sequential %+v", workers, q, got[i], seq)
			}
			if got[i].Count != want[i] {
				t.Errorf("workers=%d query %s: batch count %d != full scan %d", workers, q, got[i].Count, want[i])
			}
		}
		ex.Close()
		ex.Close() // Close is idempotent
	}
}

// TestExecutorBatchFromManyGoroutines checks the pool fair-shares between
// concurrent ExecuteBatch callers (a serving frontend's shape).
func TestExecutorBatchFromManyGoroutines(t *testing.T) {
	ds, work, probe, want := concurrencySetup(t, 8_000, 31)
	idx := tsunami.New(ds.Store, work, smallOptions())
	ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: 4})
	defer ex.Close()

	const callers = 6
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := ex.ExecuteBatch(probe)
			for i := range probe {
				if res[i].Count != want[i] {
					errs <- probe[i].String()
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for q := range errs {
		t.Errorf("concurrent batch caller got a wrong answer on %s", q)
	}
}

// TestExecutorIntraQuery checks the intra-query path: splitting one query's
// regions across workers must produce the sequential answer, including on
// baselines that don't support splitting (where it falls back).
func TestExecutorIntraQuery(t *testing.T) {
	ds, work, probe, want := concurrencySetup(t, 10_000, 41)

	for _, idx := range []tsunami.Index{
		tsunami.New(ds.Store, work, smallOptions()),
		tsunami.NewKDTree(ds.Store, work, 2048), // no intra-query support: fallback path
	} {
		ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: 4, IntraQuery: true})
		for i, q := range probe {
			if got := ex.Execute(q).Count; got != want[i] {
				t.Errorf("%s intra-query on %s: got %d, want %d", idx.Name(), q, got, want[i])
			}
		}
		ex.Close()
	}
}

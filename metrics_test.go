// Tests of the observability wiring: metrics recorded by the Executor,
// LiveStore, and ShardedStore through one shared registry, and the
// ExecuteTrace paths returning answers identical to Execute.
package tsunami_test

import (
	"strings"
	"testing"

	tsunami "repro"
	"repro/internal/obs"
)

// TestExecutorMetrics checks the pool records queue, wave, and latency
// telemetry, and that an uninstrumented Executor still works (nil
// registry contract).
func TestExecutorMetrics(t *testing.T) {
	ds := tsunami.GenerateTaxi(10_000, 1)
	work := tsunami.WorkloadFor(ds, 10, 2)
	idx := tsunami.New(ds.Store, work, smallOptions())

	m := tsunami.NewMetrics()
	ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: 2, Metrics: m})
	bare := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: 2})
	defer ex.Close()
	defer bare.Close()

	got := ex.ExecuteBatch(work)
	want := bare.ExecuteBatch(work)
	for i := range got {
		if got[i].Count != want[i].Count {
			t.Fatalf("query %d: instrumented %d vs bare %d", i, got[i].Count, want[i].Count)
		}
	}
	ex.Execute(work[0])

	snap := m.Snapshot()
	if n := snap.Counters[obs.MExecTasks]; n != uint64(len(work)) {
		t.Fatalf("tasks %d want %d", n, len(work))
	}
	if h := snap.Hists[obs.MExecLatency]; h.Count() != uint64(len(work))+1 {
		t.Fatalf("latency observations %d want %d", h.Count(), len(work)+1)
	}
	// MaxWave defaults to 8*Workers=16, so the batch runs in ceil(n/16)
	// waves of at most 16 queries (quantiles report bucket upper bounds).
	waves := (len(work) + 15) / 16
	if h := snap.Hists[obs.MExecWaveSize]; h.Count() != uint64(waves) || h.Quantile(1) < 16 {
		t.Fatalf("wave size hist %d obs, max %g; want %d waves of <= 16", h.Count(), h.Quantile(1), waves)
	}
	if h := snap.Hists[obs.MExecQueueWait]; h.Count() != uint64(len(work)) {
		t.Fatalf("queue wait observations %d want %d", h.Count(), len(work))
	}
	if d := snap.Gauges[obs.MExecQueueDepth]; d != 0 {
		t.Fatalf("queue depth %g after batch drained, want 0", d)
	}
}

// TestLiveStoreMetrics checks the query and ingest paths feed the shared
// schema plus tsunami_live_*, and that a Flush records a merge.
func TestLiveStoreMetrics(t *testing.T) {
	ds := tsunami.GenerateTaxi(10_000, 3)
	work := tsunami.WorkloadFor(ds, 10, 4)
	idx := tsunami.New(ds.Store, work, smallOptions())
	m := tsunami.NewMetrics()
	ls := tsunami.NewLiveStore(idx, work, tsunami.LiveOptions{Metrics: m, MergeThreshold: 1 << 30})
	defer ls.Close()

	for _, q := range work {
		ls.Execute(q)
	}
	row := make([]int64, ds.Store.NumDims())
	ds.Store.Row(0, row)
	if err := ls.InsertBatch([][]int64{row, row, row}); err != nil {
		t.Fatal(err)
	}
	if err := ls.Flush(); err != nil {
		t.Fatal(err)
	}

	snap := m.Snapshot()
	if n := snap.Counters[obs.MQueries]; n != uint64(len(work)) {
		t.Fatalf("queries %d want %d", n, len(work))
	}
	if snap.Counters[obs.MScanRows] == 0 || snap.Counters[obs.MScanBytes] == 0 {
		t.Fatalf("rows/bytes scanned not recorded: %d/%d",
			snap.Counters[obs.MScanRows], snap.Counters[obs.MScanBytes])
	}
	if h := snap.Hists[obs.MQueryLatency]; h.Count() != uint64(len(work)) {
		t.Fatalf("query latency observations %d want %d", h.Count(), len(work))
	}
	if h := snap.Hists[obs.MLiveIngestLatency]; h.Count() != 1 {
		t.Fatalf("ingest latency observations %d want 1", h.Count())
	}
	if n := snap.Counters[obs.MLiveIngestRows]; n != 3 {
		t.Fatalf("ingest rows %d want 3", n)
	}
	if n := snap.Counters[obs.MLiveMerges]; n != 1 {
		t.Fatalf("merges %d want 1", n)
	}
	if h := snap.Hists[obs.MLiveMergeSeconds]; h.Count() != 1 {
		t.Fatalf("merge seconds observations %d want 1", h.Count())
	}
	// Buffered rows drained by the flush; the gauge reads the live level.
	if g := snap.Gauges[obs.MLiveBufferedRows]; g != 0 {
		t.Fatalf("buffered rows gauge %g after flush, want 0", g)
	}
	if g := snap.Gauges[obs.MLiveEpoch]; g < 3 {
		t.Fatalf("epoch gauge %g, want >= 3 (open + insert + merge)", g)
	}
}

// TestShardedStoreMetrics checks the router records fan-out and latency,
// shards share the unlabeled query-path instruments (aggregation by
// construction), and per-shard gauges stay distinguishable by label.
func TestShardedStoreMetrics(t *testing.T) {
	ds := tsunami.GenerateTaxi(12_000, 5)
	work := tsunami.WorkloadFor(ds, 10, 6)
	m := tsunami.NewMetrics()
	ss, err := tsunami.NewShardedStore(ds.Store, work, smallOptions(),
		tsunami.ShardedOptions{Shards: 3, Learned: true, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	for _, q := range work {
		ss.Execute(q)
	}
	st := ss.Stats()
	snap := m.Snapshot()

	if h := snap.Hists[obs.MShardedQueryLatency]; h.Count() != uint64(len(work)) {
		t.Fatalf("sharded latency observations %d want %d", h.Count(), len(work))
	}
	if h := snap.Hists[obs.MShardedFanout]; h.Count() != uint64(len(work)) {
		t.Fatalf("fanout observations %d want %d", h.Count(), len(work))
	}
	if n := snap.Counters[obs.MShardedShardsScanned]; n != st.ShardsScanned {
		t.Fatalf("shards scanned counter %d, Stats says %d", n, st.ShardsScanned)
	}
	if n := snap.Counters[obs.MShardedShardsPruned]; n != st.ShardsPruned {
		t.Fatalf("shards pruned counter %d, Stats says %d", n, st.ShardsPruned)
	}
	// The shard LiveStores share one tsunami_queries_total instance: its
	// value is the sum of shard executes = ShardsScanned.
	if n := snap.Counters[obs.MQueries]; n != st.ShardsScanned {
		t.Fatalf("shared query counter %d, want shard executes %d", n, st.ShardsScanned)
	}
	// Per-shard gauges are labeled; all shards must be present.
	for _, want := range []string{`{shard="0"}`, `{shard="1"}`, `{shard="2"}`} {
		if _, ok := snap.Gauges[obs.MLiveEpoch+want]; !ok {
			t.Fatalf("missing per-shard epoch gauge %s; gauges: %v", want, gaugeNames(snap))
		}
	}
	if _, ok := snap.Gauges[obs.MShardedSkew]; !ok {
		t.Fatal("missing skew gauge")
	}
}

func gaugeNames(s tsunami.MetricsSnapshot) []string {
	var names []string
	for n := range s.Gauges {
		names = append(names, n)
	}
	return names
}

// TestExecuteTraceEquivalence checks every layer's traced execution
// returns the same answer as plain Execute and carries the expected
// stages.
func TestExecuteTraceEquivalence(t *testing.T) {
	ds := tsunami.GenerateTaxi(12_000, 7)
	work := tsunami.WorkloadFor(ds, 8, 8)
	idx := tsunami.New(ds.Store, work, smallOptions())

	// Core index.
	for _, q := range work {
		want := idx.Execute(q)
		got, tr := idx.ExecuteTrace(q)
		if got != want {
			t.Fatalf("core trace of %s: result %+v want %+v", q, got, want)
		}
		if tr.Rows != got.PointsScanned || tr.Bytes != got.BytesTouched {
			t.Fatalf("core trace volume (%d,%d) disagrees with result (%d,%d)",
				tr.Rows, tr.Bytes, got.PointsScanned, got.BytesTouched)
		}
		if len(tr.Stages) != 3 || tr.Stages[0].Name != "plan" {
			t.Fatalf("core trace stages: %+v", tr.Stages)
		}
	}

	// Live store (prepends the epoch stage).
	ls := tsunami.NewLiveStore(idx, work, tsunami.LiveOptions{})
	defer ls.Close()
	got, tr := ls.ExecuteTrace(work[0])
	if got != ls.Execute(work[0]) {
		t.Fatalf("live trace result mismatch")
	}
	if tr.Stages[0].Name != "epoch" || !strings.Contains(tr.Stages[0].Detail, "epoch") {
		t.Fatalf("live trace missing epoch stage: %+v", tr.Stages)
	}

	// Sharded store (route/scan/merge + per-shard spans).
	ss, err := tsunami.NewShardedStore(ds.Store, work, smallOptions(),
		tsunami.ShardedOptions{Shards: 3, Learned: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	for _, q := range work {
		want := ss.Execute(q)
		got, tr := ss.ExecuteTrace(q)
		if got != want {
			t.Fatalf("sharded trace of %s: result %+v want %+v", q, got, want)
		}
		if len(tr.Shards) == 0 || tr.Stages[0].Name != "route" {
			t.Fatalf("sharded trace shape: stages %+v shards %+v", tr.Stages, tr.Shards)
		}
		var rows uint64
		for _, sp := range tr.Shards {
			rows += sp.Rows
		}
		if rows != got.PointsScanned {
			t.Fatalf("shard spans sum %d rows, result scanned %d", rows, got.PointsScanned)
		}
		if rendered := tr.String(); !strings.Contains(rendered, "route") || !strings.Contains(rendered, "shard") {
			t.Fatalf("trace rendering incomplete:\n%s", rendered)
		}
	}
}

package tsunami

import (
	"io"

	"repro/internal/catorder"
	"repro/internal/core"
	"repro/internal/shift"
)

// This file exposes the paper's §8 future-work extensions, implemented in
// this repository:
//
//   - insertions through per-region delta buffers (TsunamiIndex.Insert /
//     MergeDeltas, the differential-file scheme the paper cites);
//   - workload-shift detection (ShiftDetector);
//   - outlier-robust functional mappings (Options via NewRobust);
//   - co-access ordering for categorical dimensions (CategoricalRemap).

// ShiftDetector watches a live query stream and reports when it has
// drifted enough from the optimized workload to warrant re-optimization
// (§8: a query type disappears, a new type appears, or type frequencies
// change).
type ShiftDetector = shift.Detector

// ShiftReport summarizes a detector window.
type ShiftReport = shift.Report

// ShiftConfig tunes detection sensitivity.
type ShiftConfig = shift.Config

// NewShiftDetector fingerprints the workload an index was optimized for.
// Feed live queries to Observe and poll Analyze; on ShiftDetected, call
// TsunamiIndex.Reoptimize with the recent workload.
func NewShiftDetector(table *Table, optimized []Query, cfg ShiftConfig) *ShiftDetector {
	return shift.NewDetector(table, optimized, cfg)
}

// CategoricalRemap is a learned dictionary re-encoding for one categorical
// dimension that places co-accessed values in adjacent codes (§8), so
// queries intersect fewer grid partitions.
type CategoricalRemap = catorder.Remap

// LearnCategoricalOrder learns a co-access-aware code assignment for
// dimension dim from the table and a typed sample workload. Apply it to
// the column before building an index (ApplyColumn) and to incoming
// queries (RewriteQuery).
func LearnCategoricalOrder(table *Table, workload []Query, dim int) *CategoricalRemap {
	return catorder.Learn(table.Column(dim), workload, dim)
}

// Load reconstructs an index previously written with TsunamiIndex.Save
// (§8 "Persistence"): the clustered column data, Grid Tree, and region
// grids round-trip without re-optimization.
func Load(r io.Reader) (*TsunamiIndex, error) { return core.Load(r) }

// Trace is an EXPLAIN-style query execution report; see
// TsunamiIndex.Explain.
type Trace = core.Trace

// NewRobust is New with outlier-robust functional mappings enabled (§8):
// up to outlierFrac of the rows may be diverted to per-grid outlier
// buffers so that a few stragglers don't inflate the mappings' error
// bands. Useful on dirty data; on clean data it behaves like New.
func NewRobust(table *Table, workload []Query, o Options, outlierFrac float64) *TsunamiIndex {
	cfg := o.coreConfig(core.FullTsunami)
	cfg.Grid.OutlierFrac = outlierFrac
	return core.Build(table, workload, cfg)
}

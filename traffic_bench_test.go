// BenchmarkTraffic is CI's serving-discipline gate: it runs the bench
// package's heavy-traffic experiment (zipfian stream against the
// epoch-keyed result cache, then an open-loop burst at 2x capacity with
// and without admission control) and reports its headline figures as
// custom benchmark metrics benchgate can gate on:
//
//	go test -run '^$' -bench BenchmarkTraffic -benchtime 1x . | \
//	    go run ./cmd/benchgate -min-hit-pct 50 -min-cache-speedup 5 \
//	        -min-shed-pct 10 -max-shed-p99-x 10
//
// The thresholds in CI are deliberately loose versions of the claims the
// experiment makes (a ~90% hit rate, a >=10x cached speedup, most of a
// 2x-overload burst shed, admitted p99 a small multiple of unloaded):
// the gate exists to catch the discipline breaking — the cache missing
// its own hot key, shedding never engaging, admitted latency tracking
// the unshedded backlog — not to pin exact figures on shared runners.
package tsunami_test

import (
	"testing"

	"repro/internal/bench"
)

func BenchmarkTraffic(b *testing.B) {
	var last *bench.TrafficResult
	for i := 0; i < b.N; i++ {
		r, err := bench.RunTraffic(bench.Options{Quick: true, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.HitRatePct, "hit-pct")
	b.ReportMetric(last.CacheSpeedupX, "cache-speedup-x")
	b.ReportMetric(last.ShedPct, "shed-pct")
	b.ReportMetric(last.ShedP99X, "shed-p99-x")
	b.ReportMetric(last.UnsheddedP99X, "unshedded-p99-x")
}

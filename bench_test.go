// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§6). Each BenchmarkTabX/BenchmarkFigX runs the corresponding
// experiment harness at smoke-test scale and prints the same rows/series
// the paper reports (the first iteration prints; repeats are silent).
//
// Full-scale runs:  go run ./cmd/tsunami-bench -experiment fig7
// These benches:    go test -bench=. -benchmem
package tsunami_test

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	tsunami "repro"
	"repro/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	o := bench.Options{Quick: true}
	for i := 0; i < b.N; i++ {
		w := io.Writer(io.Discard)
		if i == 0 {
			w = os.Stdout
		}
		if err := bench.Run(w, id, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTab3Datasets regenerates Tab 3 (dataset/query characteristics).
func BenchmarkTab3Datasets(b *testing.B) { runExperiment(b, "tab3") }

// BenchmarkTab4IndexStats regenerates Tab 4 (index statistics after
// optimization).
func BenchmarkTab4IndexStats(b *testing.B) { runExperiment(b, "tab4") }

// BenchmarkFig7Throughput regenerates Fig 7 (query performance across
// datasets and indexes).
func BenchmarkFig7Throughput(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8IndexSize regenerates Fig 8 (index sizes).
func BenchmarkFig8IndexSize(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9aWorkloadShift regenerates Fig 9a (adaptability to workload
// shift).
func BenchmarkFig9aWorkloadShift(b *testing.B) { runExperiment(b, "fig9a") }

// BenchmarkFig9bCreation regenerates Fig 9b (index creation time split).
func BenchmarkFig9bCreation(b *testing.B) { runExperiment(b, "fig9b") }

// BenchmarkFig10Dimensions regenerates Fig 10 (dimensionality sweep).
func BenchmarkFig10Dimensions(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11aDataSize regenerates Fig 11a (dataset size sweep).
func BenchmarkFig11aDataSize(b *testing.B) { runExperiment(b, "fig11a") }

// BenchmarkFig11bSelectivity regenerates Fig 11b (selectivity sweep).
func BenchmarkFig11bSelectivity(b *testing.B) { runExperiment(b, "fig11b") }

// BenchmarkFig12aComponents regenerates Fig 12a (component drill-down).
func BenchmarkFig12aComponents(b *testing.B) { runExperiment(b, "fig12a") }

// BenchmarkFig12bOptimizers regenerates Fig 12b (optimizer comparison and
// cost-model error).
func BenchmarkFig12bOptimizers(b *testing.B) { runExperiment(b, "fig12b") }

// BenchmarkAblations measures the design-choice ablations DESIGN.md calls
// out (sort-dim refinement, FMs, CCDFs, merge epsilon, outlier buffers).
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkConcurrentThroughput regenerates the concurrency experiment:
// Executor batch throughput at 1, 4, and NumCPU workers against one shared
// Tsunami index (reported alongside the Fig 7 harness; see also the
// workers=N sub-benchmarks below for queries/sec at each pool size).
func BenchmarkConcurrentThroughput(b *testing.B) { runExperiment(b, "concurrency") }

// BenchmarkExecutorWorkers reports queries/sec of the Fig 7-style query mix
// through the Executor worker pool at 1, 4, and NumCPU workers.
func BenchmarkExecutorWorkers(b *testing.B) {
	ds, work := microSetup(b)
	idx := tsunami.New(ds.Store, work, tsunami.Options{OptimizerIters: 2, MaxOptQueries: 32})
	counts := []int{1, 4, runtime.NumCPU()}
	if runtime.NumCPU() == 1 || runtime.NumCPU() == 4 {
		counts = counts[:2] // avoid duplicate sub-benchmark names
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: workers})
			defer ex.Close()
			ex.ExecuteBatch(work) // warm-up
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex.ExecuteBatch(work)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*len(work))/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}

// BenchmarkLiveMixed measures the mixed read/write serving mode: parallel
// readers execute against a LiveStore while background writers stream
// inserts fast enough to force repeated copy-on-write merges. Reads
// resolve the current epoch through an atomic pointer and never take a
// lock, so read throughput persists through maintenance — the merges/sec
// metric confirms maintenance actually overlapped the measured reads
// (compare reads/sec here against BenchmarkQueryTsunami's sequential
// read-only latency: there is no stop-the-world window to amortize).
func BenchmarkLiveMixed(b *testing.B) {
	ds, work := microSetup(b)
	idx := tsunami.New(ds.Store, work, tsunami.Options{OptimizerIters: 2, MaxOptQueries: 32})
	ls := tsunami.NewLiveStore(idx, nil, tsunami.LiveOptions{MergeThreshold: 512})
	defer ls.Close()

	// Background writers: perturbed copies of existing rows. Writers are
	// paced (a short sleep per small batch) so the table grows linearly
	// with wall time instead of running away — the point is steady
	// maintenance pressure under the readers, not maximum ingest.
	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			buf := make([]int64, ds.Store.NumDims())
			rows := make([][]int64, 8)
			for i := 0; ; i += len(rows) {
				select {
				case <-stop:
					return
				default:
				}
				for k := range rows {
					row := append([]int64(nil), ds.Store.Row((w*7919+i+k)%ds.Store.NumRows(), buf)...)
					row[0]++
					rows[k] = row
				}
				if err := ls.InsertBatch(rows); err != nil {
					b.Error(err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	b.ReportAllocs()
	before := ls.Stats() // activity during setup must not count
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			ls.Execute(work[i%len(work)])
			i++
		}
	})
	b.StopTimer()
	after := ls.Stats()
	close(stop)
	writerWG.Wait()
	secs := b.Elapsed().Seconds()
	b.ReportMetric(float64(b.N)/secs, "reads/sec")
	b.ReportMetric(float64(after.Inserts-before.Inserts)/secs, "writes/sec")
	b.ReportMetric(float64(after.Merges-before.Merges)/secs, "merges/sec")
}

// BenchmarkShardedIngest measures ingest throughput against shard count:
// concurrent writers stream row batches into a ShardedStore at 1, 2, and
// 4 shards (plus NumCPU when distinct). Each shard has its own serialized
// copy-on-write ingest section, so on a multi-core runner rows/sec grows
// with shards — the acceptance target is ≥2x at 4 shards vs 1 (a
// single-core runner can't show scaling; the absolute numbers still
// catch regressions in the routed ingest path). Merges are disabled so
// the numbers isolate ingest, not maintenance.
func BenchmarkShardedIngest(b *testing.B) {
	ds := tsunami.GenerateTaxi(30_000, 1)
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	for _, shards := range counts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ss, err := tsunami.NewShardedStore(ds.Store, nil,
				tsunami.Options{OptimizerIters: 1, MaxOptQueries: 16},
				tsunami.ShardedOptions{
					Shards:  shards,
					Learned: true,
					Live:    tsunami.LiveOptions{MergeThreshold: 1 << 30},
				})
			if err != nil {
				b.Fatal(err)
			}
			defer ss.Close()
			const batchSize = 64
			// At least as many writer goroutines as shards, so shard
			// parallelism is reachable even when GOMAXPROCS is low.
			if runtime.GOMAXPROCS(0) < shards {
				b.SetParallelism((shards + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wr atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				w := int(wr.Add(1))
				buf := make([]int64, ds.Store.NumDims())
				batch := make([][]int64, batchSize)
				for k := range batch {
					batch[k] = make([]int64, ds.Store.NumDims())
				}
				for i := 0; pb.Next(); i++ {
					for k := range batch {
						copy(batch[k], ds.Store.Row((w*7919+i*batchSize+k)%ds.Store.NumRows(), buf))
						batch[k][0] += int64(1 + w)
					}
					if err := ss.InsertBatch(batch); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}

// BenchmarkShardedMixed measures the sharded serving mode under a mixed
// workload: parallel readers scatter-gather through the router while
// background writers stream batches that keep every shard's own merge
// loop busy. Compare reads/sec against BenchmarkLiveMixed: routing adds a
// partitioner lookup per query but pruning skips whole shards, and
// maintenance cost is split across shards.
func BenchmarkShardedMixed(b *testing.B) {
	ds, work := microSetup(b)
	ss, err := tsunami.NewShardedStore(ds.Store, work,
		tsunami.Options{OptimizerIters: 2, MaxOptQueries: 32},
		tsunami.ShardedOptions{
			Shards:  4,
			Learned: true,
			Live:    tsunami.LiveOptions{MergeThreshold: 512},
		})
	if err != nil {
		b.Fatal(err)
	}
	defer ss.Close()

	// Background writers: perturbed copies of existing rows, paced so the
	// table grows linearly with wall time (steady maintenance pressure
	// under the readers, not maximum ingest).
	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			buf := make([]int64, ds.Store.NumDims())
			rows := make([][]int64, 8)
			for i := 0; ; i += len(rows) {
				select {
				case <-stop:
					return
				default:
				}
				for k := range rows {
					row := append([]int64(nil), ds.Store.Row((w*7919+i+k)%ds.Store.NumRows(), buf)...)
					row[0]++
					rows[k] = row
				}
				if err := ss.InsertBatch(rows); err != nil {
					b.Error(err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	b.ReportAllocs()
	before := ss.Stats() // activity during setup must not count
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			ss.Execute(work[i%len(work)])
			i++
		}
	})
	b.StopTimer()
	after := ss.Stats()
	close(stop)
	writerWG.Wait()
	secs := b.Elapsed().Seconds()
	b.ReportMetric(float64(b.N)/secs, "reads/sec")
	b.ReportMetric(float64(after.Inserts-before.Inserts)/secs, "writes/sec")
	b.ReportMetric(float64(after.Merges-before.Merges)/secs, "merges/sec")
	if q := after.Queries - before.Queries; q > 0 {
		b.ReportMetric(float64(after.ShardsScanned-before.ShardsScanned)/float64(q), "shards/query")
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks on the public API: per-query latency of each index on a
// fixed dataset, reported with allocations.

func microSetup(b *testing.B) (*tsunami.Dataset, []tsunami.Query) {
	b.Helper()
	ds := tsunami.GenerateTaxi(60_000, 1)
	work := tsunami.WorkloadFor(ds, 40, 2)
	return ds, work
}

func benchQueries(b *testing.B, idx tsunami.Index, work []tsunami.Query) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Execute(work[i%len(work)])
	}
}

func BenchmarkQueryTsunami(b *testing.B) {
	ds, work := microSetup(b)
	idx := tsunami.New(ds.Store, work, tsunami.Options{OptimizerIters: 2, MaxOptQueries: 32})
	benchQueries(b, idx, work)
}

func BenchmarkQueryFlood(b *testing.B) {
	ds, work := microSetup(b)
	idx := tsunami.NewFlood(ds.Store, work, tsunami.Options{OptimizerIters: 2, MaxOptQueries: 32})
	benchQueries(b, idx, work)
}

func BenchmarkQueryKDTree(b *testing.B) {
	ds, work := microSetup(b)
	benchQueries(b, tsunami.NewKDTree(ds.Store, work, 2048), work)
}

func BenchmarkQueryZOrder(b *testing.B) {
	ds, work := microSetup(b)
	benchQueries(b, tsunami.NewZOrder(ds.Store, 2048), work)
}

func BenchmarkQueryHyperoctree(b *testing.B) {
	ds, work := microSetup(b)
	benchQueries(b, tsunami.NewHyperoctree(ds.Store, 2048), work)
}

func BenchmarkQuerySingleDim(b *testing.B) {
	ds, work := microSetup(b)
	benchQueries(b, tsunami.NewSingleDim(ds.Store, work, -1), work)
}

func BenchmarkQueryFullScan(b *testing.B) {
	ds, work := microSetup(b)
	benchQueries(b, tsunami.NewFullScan(ds.Store), work)
}

// BenchmarkBuildTsunami measures end-to-end optimize+build time.
func BenchmarkBuildTsunami(b *testing.B) {
	ds, work := microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tsunami.New(ds.Store, work, tsunami.Options{OptimizerIters: 2, MaxOptQueries: 32})
	}
}

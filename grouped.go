package tsunami

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/colstore"
	"repro/internal/query"
)

// GroupedResult is a grouped aggregate's answer: one GroupAgg per
// distinct group key, sorted by key, plus scan statistics. Partial
// results merge exactly (per-group count and sum add; AVG derives from
// the merged pair), which is what lets grouped queries scatter-gather
// across regions, workers, and shards like flat aggregates.
type GroupedResult = colstore.GroupedResult

// GroupAgg is one group's aggregate: the group key, the matching row
// count, and (for SUM/AVG queries) the sum of the aggregated column.
type GroupAgg = colstore.GroupAgg

// CountBy builds a COUNT(*) ... GROUP BY dim query.
func CountBy(dim int, filters ...Filter) Query {
	return query.NewCount(filters...).By(dim)
}

// SumBy builds a SUM(aggDim) ... GROUP BY dim query.
func SumBy(aggDim, dim int, filters ...Filter) Query {
	return query.NewSum(aggDim, filters...).By(dim)
}

// groupedIndex is implemented by indexes that can answer grouped
// aggregates natively (TsunamiIndex, LiveStore, ShardedStore). Baseline
// indexes do not implement it; ExecuteGrouped falls back to a full
// row-at-a-time scan over their store only when the index exposes one.
type groupedIndex interface {
	ExecuteGrouped(q query.Query) colstore.GroupedResult
}

// intraQueryGroupedIndex is the grouped face of intraQueryIndex: split
// one grouped query's work across submitted tasks and merge the grouped
// partials. Same no-blocking contract.
type intraQueryGroupedIndex interface {
	ExecuteGroupedParallelOn(q query.Query, workers int, submit func(task func())) colstore.GroupedResult
}

// ErrNotGrouped reports a grouped query sent to an index that cannot
// answer grouped aggregates (a baseline index), or a flat query sent to
// ExecuteGrouped.
var ErrNotGrouped = fmt.Errorf("tsunami: index does not support grouped aggregates")

// ExecuteGrouped answers one grouped aggregate (built with CountBy,
// SumBy, or Query.By). With IntraQuery enabled on a supporting index the
// query's work is split across the worker pool, exactly like Execute.
// Indexes that cannot answer grouped queries return ErrNotGrouped.
// After Close it returns a zero result and nil error, matching Execute.
func (e *Executor) ExecuteGrouped(q Query) (GroupedResult, error) {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return GroupedResult{}, nil
	}
	if !q.Grouped() {
		return GroupedResult{}, fmt.Errorf("%w: query %s has no GROUP BY; use Execute", ErrNotGrouped, q)
	}
	idx := e.source()
	m, w := e.metrics, e.workload
	var start time.Time
	if m != nil || w != nil {
		start = time.Now()
	}
	var res GroupedResult
	if p, ok := idx.(intraQueryGroupedIndex); ok && e.intra {
		res = p.ExecuteGroupedParallelOn(q, e.workers, func(task func()) {
			if !e.trySubmit(task) {
				task()
			}
		})
	} else if g, ok := idx.(groupedIndex); ok {
		res = g.ExecuteGrouped(q)
	} else {
		return GroupedResult{}, fmt.Errorf("%w: %s", ErrNotGrouped, idx.Name())
	}
	if m != nil || w != nil {
		d := time.Since(start)
		if m != nil {
			m.latency.RecordDuration(d)
		}
		w.Record(q, d, res.TotalCount(), res.PointsScanned, res.BytesTouched)
	}
	return res, nil
}

// ServeGrouped answers one grouped query under the same admission
// control as Serve: plan-time row/byte budgets first (the group-key
// column is charged as one extra stream by the cost estimate), then the
// in-flight watermark for the query's priority class. Without an
// Admission configuration it is exactly ExecuteGrouped.
func (e *Executor) ServeGrouped(q Query, pri Priority) (GroupedResult, error) {
	a := e.adm
	if a == nil {
		return e.ExecuteGrouped(q)
	}
	m := e.metrics
	if a.maxRows > 0 || a.maxBytes > 0 {
		if ce, ok := e.source().(costEstimator); ok {
			rows, bytes := ce.EstimateCost(q)
			if a.maxRows > 0 && rows > a.maxRows {
				if m != nil {
					m.admBudget.Inc()
				}
				return GroupedResult{}, fmt.Errorf("%w: plan estimates %d rows scanned, budget %d", ErrOverBudget, rows, a.maxRows)
			}
			if a.maxBytes > 0 && bytes > a.maxBytes {
				if m != nil {
					m.admBudget.Inc()
				}
				return GroupedResult{}, fmt.Errorf("%w: plan estimates %d bytes touched, budget %d", ErrOverBudget, bytes, a.maxBytes)
			}
		}
	}
	if lim := a.limit(pri); lim > 0 {
		if n := a.inFlight.Add(1); n > lim {
			a.inFlight.Add(-1)
			if m != nil {
				m.admShed.Inc()
			}
			return GroupedResult{}, fmt.Errorf("%w: %d %s-priority queries in flight (limit %d)", ErrShed, n-1, pri, lim)
		}
		if m != nil {
			m.admInFlight.Add(1)
		}
		defer func() {
			a.inFlight.Add(-1)
			if m != nil {
				m.admInFlight.Add(-1)
			}
		}()
		// See Serve: yield once so a burst's true concurrency reaches the
		// watermark before any of it starts scanning.
		runtime.Gosched()
	}
	if m != nil {
		m.admAdmitted.Inc()
	}
	return e.ExecuteGrouped(q)
}

// Cache-coherence oracle for the LiveStore result cache: under
// concurrent ingest (run with -race), every Execute — hit or miss — must
// return exactly what a fresh execution against the same epoch's
// immutable index returns. The epoch handle is the oracle: if
// Index() returns the same pointer before and after Execute, no publish
// intervened, so the answer is pinned.
package tsunami_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	tsunami "repro"
)

func TestLiveCacheCoherenceUnderIngest(t *testing.T) {
	ds := tsunami.GenerateTaxi(4000, 7)
	work := tsunami.WorkloadFor(ds, 10, 8)
	idx := tsunami.New(ds.Store, work, tsunami.Options{OptimizerIters: 2, MaxOptQueries: 16})
	ls := tsunami.NewLiveStore(idx, work, tsunami.LiveOptions{
		CacheEntries:   512,
		MergeThreshold: 300, // merges publish too; the cache must survive them
	})
	defer ls.Close()

	// A small probe set, so readers re-ask the same queries and hit.
	probes := []tsunami.Query{
		tsunami.Count(),
		tsunami.Sum(1),
		work[0],
		work[len(work)/2],
	}

	var (
		stop     atomic.Bool
		verified atomic.Int64
		wg       sync.WaitGroup
	)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				runtime.Gosched() // keep the writer fed on single-core runners
				q := probes[(i+r)%len(probes)]
				epochIdx := ls.Index()
				res := ls.Execute(q)
				if ls.Index() != epochIdx {
					continue // a publish raced the read; the epoch is not pinned
				}
				want := epochIdx.Execute(q)
				if res.Count != want.Count || res.Sum != want.Sum {
					t.Errorf("reader %d: cached result diverged from its epoch: got {Count:%d Sum:%d}, want {Count:%d Sum:%d} for %v",
						r, res.Count, res.Sum, want.Count, want.Sum, q)
					return
				}
				verified.Add(1)
			}
		}(r)
	}

	// Writer: each batch bumps the epoch, invalidating every cached entry.
	for i := 0; i < 30; i++ {
		batch := make([][]int64, 4)
		for j := range batch {
			batch[j] = ds.Store.Row((4*i+j)%ds.Store.NumRows(), nil)
		}
		if err := ls.InsertBatch(batch); err != nil {
			t.Error(err)
			break
		}
	}
	// Ingest is over, so the epoch is stable: let readers verify against
	// it before stopping them.
	for deadline := time.Now().Add(5 * time.Second); verified.Load() < 50 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if verified.Load() == 0 {
		t.Fatal("no read ever pinned an epoch; the oracle checked nothing")
	}

	// Quiescent phase: ask every probe twice at a now-stable epoch — the
	// second answer is a guaranteed hit and must equal both the first
	// answer and the index's.
	for _, q := range probes {
		first := ls.Execute(q)
		second := ls.Execute(q)
		want := ls.Index().Execute(q)
		if first != second || first.Count != want.Count || first.Sum != want.Sum {
			t.Fatalf("stable-epoch mismatch for %v: first=%+v second=%+v want={Count:%d Sum:%d}",
				q, first, second, want.Count, want.Sum)
		}
	}
	if st := ls.Stats(); st.Cache.Hits == 0 {
		t.Fatalf("cache never hit; coherence was not exercised (stats %+v)", st.Cache)
	}
}

// Acceptance tests for the sharded serving mode, run against the public
// API. The core property: a ShardedStore is indistinguishable from an
// unsharded LiveStore over the same rows — every aggregate (COUNT, SUM,
// and the derived AVG) agrees, for every partitioner, under concurrent
// ingest (run with -race), and through the Executor's scatter-gather
// path.
package tsunami_test

import (
	"fmt"
	"sync"
	"testing"

	tsunami "repro"
	"repro/internal/testutil"
)

// shardedSetup builds a taxi table, its workload, and a ShardedStore.
func shardedSetup(t *testing.T, rows int, so tsunami.ShardedOptions) (*tsunami.Dataset, []tsunami.Query, *tsunami.ShardedStore) {
	t.Helper()
	ds := tsunami.GenerateTaxi(rows, 7)
	work := tsunami.WorkloadFor(ds, 30, 8)
	ss, err := tsunami.NewShardedStore(ds.Store, work, tsunami.Options{OptimizerIters: 2, MaxOptQueries: 32}, so)
	if err != nil {
		t.Fatal(err)
	}
	return ds, work, ss
}

// TestShardedEqualsUnshardedUnderIngest is the ISSUE 3 acceptance
// property: with writers streaming the same rows into a ShardedStore and
// an unsharded LiveStore concurrently with readers (no torn answers, no
// races), the two stores must agree on every aggregate once quiesced —
// for both the learned-range and hash partitioners.
func TestShardedEqualsUnshardedUnderIngest(t *testing.T) {
	for _, tc := range []struct {
		name string
		so   tsunami.ShardedOptions
	}{
		{"range", tsunami.ShardedOptions{Shards: 4, Learned: true, Live: tsunami.LiveOptions{MergeThreshold: 500}}},
		{"hash", tsunami.ShardedOptions{Shards: 3, Live: tsunami.LiveOptions{MergeThreshold: 500}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds, work, ss := shardedSetup(t, 8000, tc.so)
			defer ss.Close()
			ls := tsunami.NewLiveStore(
				tsunami.New(ds.Store, work, tsunami.Options{OptimizerIters: 2, MaxOptQueries: 32}),
				nil, tsunami.LiveOptions{MergeThreshold: 500})
			defer ls.Close()
			oracle := testutil.NewOracle(ds.Store)

			const writers = 4
			var wg sync.WaitGroup
			var stopReaders sync.WaitGroup
			done := make(chan struct{})

			// Writers stream identical rows into both stores (fresh trips:
			// perturbed copies of existing rows, hitting all shards).
			for w := 0; w < writers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					buf := make([]int64, ds.Store.NumDims())
					for i := 0; i < 120; i++ {
						batch := make([][]int64, 8)
						for k := range batch {
							row := append([]int64(nil), ds.Store.Row((w*3571+i*8+k)%ds.Store.NumRows(), buf)...)
							row[0] += 1_000_000 + int64(w) // distinguishable, spread across shards
							batch[k] = row
						}
						if err := ss.InsertBatch(batch); err != nil {
							t.Errorf("sharded writer %d: %v", w, err)
							return
						}
						if err := ls.InsertBatch(batch); err != nil {
							t.Errorf("live writer %d: %v", w, err)
							return
						}
						oracle.Add(batch...)
					}
				}()
			}
			// Readers hammer both stores while ingest and per-shard merges
			// run; answers race against ingest so they are not compared
			// here — the -race run proves the paths are data-race free.
			for r := 0; r < 4; r++ {
				r := r
				stopReaders.Add(1)
				go func() {
					defer stopReaders.Done()
					for k := r; ; k++ {
						select {
						case <-done:
							return
						default:
						}
						ss.Execute(work[k%len(work)])
						ls.Execute(work[k%len(work)])
					}
				}()
			}
			wg.Wait()
			close(done)
			stopReaders.Wait()

			// Quiesce both and compare everything.
			if err := ss.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := ls.Flush(); err != nil {
				t.Fatal(err)
			}
			st := ss.Stats()
			if st.BufferedRows != 0 {
				t.Fatalf("%d rows still buffered after Flush", st.BufferedRows)
			}
			if want := uint64(writers * 120 * 8); st.Inserts != want {
				t.Fatalf("sharded store counted %d inserts, want %d", st.Inserts, want)
			}
			probe := append(tsunami.WorkloadFor(ds, 20, 9), tsunami.Count())
			for i := 0; i < ds.Store.NumDims(); i++ {
				probe = append(probe, tsunami.Sum(i))
			}
			for _, q := range probe {
				a, b := ss.Execute(q), ls.Execute(q)
				if a.Count != b.Count || a.Sum != b.Sum || a.Avg() != b.Avg() {
					t.Errorf("sharded (%d, %d, %g) != unsharded (%d, %d, %g) on %s",
						a.Count, a.Sum, a.Avg(), b.Count, b.Sum, b.Avg(), q)
				}
			}
			// And both against the shared full-scan oracle.
			oracle.Check(t, ss, probe)
			oracle.Check(t, ls, probe)
			t.Logf("stats: %d queries, fan-out %.2f of %d shards",
				st.Queries, float64(st.ShardsScanned)/float64(st.Queries), st.Shards)
		})
	}
}

// TestShardedExecutorScatterGather routes a ShardedStore through the
// public Executor: batch execution and intra-query scatter-gather must
// both match direct sequential execution.
func TestShardedExecutorScatterGather(t *testing.T) {
	_, work, ss := shardedSetup(t, 8000, tsunami.ShardedOptions{Shards: 4, Learned: true})
	defer ss.Close()

	want := make([]tsunami.Result, len(work))
	for i, q := range work {
		want[i] = ss.Execute(q)
	}

	// Batch path: queries fan across the pool, each routed per shard.
	ex := tsunami.NewExecutorSource(ss, tsunami.ExecutorOptions{Workers: 4})
	got := ex.ExecuteBatch(work)
	for i := range work {
		if got[i].Count != want[i].Count || got[i].Sum != want[i].Sum {
			t.Errorf("batch: query %d (%s): got (%d, %d), want (%d, %d)",
				i, work[i], got[i].Count, got[i].Sum, want[i].Count, want[i].Sum)
		}
	}
	ex.Close()

	// Intra-query path: each query's surviving shards scatter across the
	// pool and the partials gather.
	ex = tsunami.NewExecutorSource(ss, tsunami.ExecutorOptions{Workers: 4, IntraQuery: true})
	defer ex.Close()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range work {
				res := ex.Execute(q)
				if res.Count != want[i].Count || res.Sum != want[i].Sum {
					t.Errorf("reader %d: scatter-gather on %s: got (%d, %d), want (%d, %d)",
						r, q, res.Count, res.Sum, want[i].Count, want[i].Sum)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestShardedStoreIsIndex nails the public contract: a ShardedStore can
// stand anywhere an Index can.
func TestShardedStoreIsIndex(t *testing.T) {
	ds := tsunami.GenerateTaxi(3000, 17)
	ss, err := tsunami.NewShardedStore(ds.Store, nil, tsunami.Options{OptimizerIters: 1, MaxOptQueries: 16},
		tsunami.ShardedOptions{Partition: tsunami.NewRangePartitioner(ds.Store, 0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	var idx tsunami.Index = ss
	if got := idx.Execute(tsunami.Count()).Count; got != 3000 {
		t.Errorf("COUNT(*) = %d, want 3000", got)
	}
	if idx.Name() == "" || idx.SizeBytes() == 0 {
		t.Errorf("Name/SizeBytes not meaningful: %q, %d", idx.Name(), idx.SizeBytes())
	}
	if fmt.Sprint(ss.Stats().Partitioner) != "range(d0,2)" {
		t.Errorf("partitioner = %s", ss.Stats().Partitioner)
	}
}

// Regression tests for the AVG zero-match edge case: Result.Avg must
// return 0 (never NaN) when no row matches — on a plain index, on a
// LiveStore, and on a ShardedStore whose router pruned every shard (the
// path where the merged result was never touched by any scan).
package tsunami_test

import (
	"math"
	"testing"

	tsunami "repro"
)

// noMatch pins dim 0 far above any generated taxi value.
var noMatch = tsunami.Filter{Dim: 0, Lo: 1 << 40, Hi: 1 << 41}

func checkZeroAvg(t *testing.T, res tsunami.Result, what string) {
	t.Helper()
	if res.Count != 0 {
		t.Fatalf("%s: want zero matches, got count %d", what, res.Count)
	}
	if avg := res.Avg(); avg != 0 || math.IsNaN(avg) {
		t.Fatalf("%s: zero-match Avg must be 0, got %v", what, avg)
	}
}

func TestAvgZeroMatchIndex(t *testing.T) {
	ds := tsunami.GenerateTaxi(2000, 1)
	work := tsunami.WorkloadFor(ds, 10, 2)
	idx := tsunami.New(ds.Store, work, tsunami.Options{OptimizerIters: 2, MaxOptQueries: 16})
	checkZeroAvg(t, idx.Execute(tsunami.Sum(1, noMatch)), "index")
}

func TestAvgZeroMatchLiveStore(t *testing.T) {
	ds := tsunami.GenerateTaxi(2000, 1)
	work := tsunami.WorkloadFor(ds, 10, 2)
	idx := tsunami.New(ds.Store, work, tsunami.Options{OptimizerIters: 2, MaxOptQueries: 16})
	ls := tsunami.NewLiveStore(idx, work, tsunami.LiveOptions{})
	defer ls.Close()

	checkZeroAvg(t, ls.Execute(tsunami.Sum(1, noMatch)), "live store")

	// Zero-match must also hold against buffered-but-unmerged rows.
	ls.Insert(ds.Store.Row(0, nil))
	checkZeroAvg(t, ls.Execute(tsunami.Sum(1, noMatch)), "live store with buffer")
}

func TestAvgZeroMatchShardedAllPruned(t *testing.T) {
	ds := tsunami.GenerateTaxi(2000, 1)
	work := tsunami.WorkloadFor(ds, 10, 2)
	ss, err := tsunami.NewShardedStore(ds.Store, work,
		tsunami.Options{OptimizerIters: 2, MaxOptQueries: 16},
		tsunami.ShardedOptions{Shards: 4, Learned: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	// The learned range partitioner cuts dim 0, so a filter above every
	// cut prunes all four shards: the router returns the zero Result
	// without any shard executing.
	res := ss.Execute(tsunami.Sum(1, noMatch))
	checkZeroAvg(t, res, "sharded all-pruned")

	st := ss.Stats()
	if st.ShardsPruned == 0 {
		t.Fatalf("expected the router to prune shards for an out-of-range filter; stats %+v", st)
	}
}

// Acceptance tests for grouped aggregates (GROUP BY) across the serving
// stack, run against the public API. Every path — the plain index, the
// Executor (intra-query parallelism and admission included), a LiveStore
// with buffered-but-unmerged rows, and a ShardedStore through a forced
// rebalance — must agree exactly with a naive full-scan group-by oracle:
// same group keys, same per-group count and sum.
package tsunami_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	tsunami "repro"
	"repro/internal/testutil"
)

func TestGroupedMatchesOracleOnIndex(t *testing.T) {
	table := testutil.SmallTaxi(4000, 7)
	work := testutil.RandomQueries(table, 30, 8)
	idx := tsunami.New(table, work, tsunami.Options{OptimizerIters: 1, MaxOptQueries: 16})

	qs := testutil.RandomGroupedQueries(table, 60, 9)
	testutil.CheckGroupedMatchesFullScan(t, "TsunamiIndex", idx.ExecuteGrouped, table, qs)

	// The parallel grouped path merges per-worker partials; it must be
	// bit-identical to the sequential path's answer.
	testutil.CheckGroupedMatchesFullScan(t, "TsunamiIndex(parallel)",
		func(q tsunami.Query) tsunami.GroupedResult { return idx.ExecuteGroupedParallel(q, 4) },
		table, qs)
}

func TestGroupedExecutorAndAdmission(t *testing.T) {
	table := testutil.SmallTaxi(3000, 11)
	work := testutil.RandomQueries(table, 20, 12)
	idx := tsunami.New(table, work, tsunami.Options{OptimizerIters: 1, MaxOptQueries: 16})

	ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: 4, IntraQuery: true})
	defer ex.Close()
	qs := testutil.RandomGroupedQueries(table, 30, 13)
	testutil.CheckGroupedMatchesFullScan(t, "Executor",
		func(q tsunami.Query) tsunami.GroupedResult {
			res, err := ex.ExecuteGrouped(q)
			if err != nil {
				t.Fatalf("ExecuteGrouped(%s): %v", q, err)
			}
			return res
		}, table, qs)

	// A flat query through the grouped entry point is a usage error, not
	// a silent empty result.
	if _, err := ex.ExecuteGrouped(tsunami.Count()); !errors.Is(err, tsunami.ErrNotGrouped) {
		t.Errorf("flat query through ExecuteGrouped: err=%v, want ErrNotGrouped", err)
	}

	// ServeGrouped enforces the same plan-time budgets as Serve: a
	// full-scan grouped query cannot fit a one-row budget.
	strict := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{
		Admission: tsunami.AdmissionConfig{MaxRows: 1},
	})
	defer strict.Close()
	if _, err := strict.ServeGrouped(tsunami.CountBy(4), tsunami.PriorityNormal); !errors.Is(err, tsunami.ErrOverBudget) {
		t.Errorf("ServeGrouped under 1-row budget: err=%v, want ErrOverBudget", err)
	}
	// Within budget it answers exactly.
	relaxed := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{
		Admission: tsunami.AdmissionConfig{MaxRows: 1 << 40},
	})
	defer relaxed.Close()
	res, err := relaxed.ServeGrouped(tsunami.CountBy(4), tsunami.PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	want := testutil.GroupedOracle(table, tsunami.CountBy(4))
	if len(res.Groups) != len(want.Groups) || res.TotalCount() != want.TotalCount() {
		t.Errorf("ServeGrouped: %d groups / %d rows, want %d / %d",
			len(res.Groups), res.TotalCount(), len(want.Groups), want.TotalCount())
	}
}

// TestGroupedLiveStoreBufferedRows checks grouped queries through a
// LiveStore whose delta buffers hold unmerged rows: buffered rows must be
// visible to grouped aggregates exactly like clustered ones, before and
// after the background merge, and the epoch-keyed result cache must never
// serve a pre-insert grouped answer after the epoch advanced.
func TestGroupedLiveStoreBufferedRows(t *testing.T) {
	seed := int64(21)
	rng := rand.New(rand.NewSource(seed))
	table := testutil.SmallTaxi(3000, seed)
	work := testutil.RandomQueries(table, 20, seed+1)
	idx := tsunami.New(table, work, tsunami.Options{OptimizerIters: 1, MaxOptQueries: 16})
	ls := tsunami.NewLiveStore(idx, work, tsunami.LiveOptions{
		MergeThreshold: 1 << 30, // keep rows buffered: the delta path is the subject
		CacheEntries:   256,
	})
	defer ls.Close()
	oracle := testutil.NewOracle(table)
	qs := testutil.RandomGroupedQueries(table, 25, seed+2)

	// Execute twice per query: the second answer comes from the result
	// cache and must be byte-equal (clone-on-get keeps entries isolated).
	exec := func(q tsunami.Query) tsunami.GroupedResult {
		first := ls.ExecuteGrouped(q)
		second := ls.ExecuteGrouped(q)
		if len(first.Groups) != len(second.Groups) || first.TotalCount() != second.TotalCount() {
			t.Fatalf("cached grouped answer diverged for %s: %d/%d groups, %d/%d rows",
				q, len(first.Groups), len(second.Groups), first.TotalCount(), second.TotalCount())
		}
		return second
	}

	oracle.CheckGrouped(t, "LiveStore", exec, qs)

	// Ingest in rounds; every round's rows stay buffered (threshold is
	// huge) and must appear in grouped answers immediately.
	for round := 0; round < 3; round++ {
		batch := make([][]int64, 200)
		for k := range batch {
			d := 10 + rng.Int63n(900)
			batch[k] = []int64{
				rng.Int63n(1_000_000), rng.Int63n(1_000_000),
				d, 250 + d*5/2 + rng.Int63n(200), 1 + rng.Int63n(6),
			}
		}
		if err := ls.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		oracle.Add(batch...)
		if ls.Index().NumBuffered() == 0 {
			t.Fatal("rows merged despite the huge threshold; the buffered path is untested")
		}
		oracle.CheckGrouped(t, fmt.Sprintf("LiveStore(round %d)", round), exec, qs)
	}

	// After folding everything the answers must not change.
	if err := ls.Flush(); err != nil {
		t.Fatal(err)
	}
	oracle.CheckGrouped(t, "LiveStore(flushed)", exec, qs)
	if hits := ls.CacheStats().Hits; hits == 0 {
		t.Error("grouped result cache never hit")
	}
}

// TestGroupedShardedUnderRebalance checks grouped queries through a
// ShardedStore while forced rebalances race concurrent grouped readers
// and writers (run under -race): at every quiesce point the scatter-
// gathered grouped merge must equal the full-scan oracle.
func TestGroupedShardedUnderRebalance(t *testing.T) {
	seed := int64(31)
	rng := rand.New(rand.NewSource(seed))
	const timeSpan = 500_000
	n := 4000
	cols := make([][]int64, 4)
	for j := range cols {
		cols[j] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		t0 := rng.Int63n(timeSpan)
		cols[0][i] = t0
		cols[1][i] = t0/2 + rng.Int63n(1000)
		cols[2][i] = rng.Int63n(8) // low-cardinality group dimension
		cols[3][i] = rng.Int63n(100_000)
	}
	table, err := tsunami.NewTable(cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	work := testutil.RandomQueries(table, 30, seed+1)
	ss, err := tsunami.NewShardedStore(table, work,
		tsunami.Options{OptimizerIters: 1, MaxOptQueries: 16},
		tsunami.ShardedOptions{
			Shards:       3,
			Learned:      true,
			Live:         tsunami.LiveOptions{MergeThreshold: 400},
			CacheEntries: 256,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	oracle := testutil.NewOracle(table)
	gqs := testutil.RandomGroupedQueries(table, 20, seed+2)

	// Grouped readers hammer the store through migrations and merges;
	// their racing answers are not compared (the quiesce points do the
	// exact checks) — the -race run proves the grouped scatter-gather and
	// seqlock-retry paths are data-race free.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		readers.Add(1)
		go func() {
			defer readers.Done()
			for k := r; ; k++ {
				select {
				case <-done:
					return
				default:
				}
				ss.ExecuteGrouped(gqs[k%len(gqs)])
				ss.ExecuteGroupedParallelOn(gqs[(k+1)%len(gqs)], 2, nil)
			}
		}()
	}
	defer func() {
		close(done)
		readers.Wait()
	}()

	// Skewed ingest drives imbalance; a forced rebalance races it.
	clock := int64(timeSpan)
	for phase := 0; phase < 2; phase++ {
		var writers sync.WaitGroup
		for w := 0; w < 2; w++ {
			wrng := rand.New(rand.NewSource(seed + int64(phase*2+w+10)))
			writers.Add(1)
			go func() {
				defer writers.Done()
				for b := 0; b < 15; b++ {
					batch := make([][]int64, 16)
					for k := range batch {
						t0 := clock + int64(b*16+k+1)
						batch[k] = []int64{
							t0, t0/2 + wrng.Int63n(1000),
							wrng.Int63n(8), wrng.Int63n(100_000),
						}
					}
					if err := ss.InsertBatch(batch); err != nil {
						t.Errorf("writer: %v", err)
						return
					}
					oracle.Add(batch...)
				}
			}()
		}
		if err := ss.Rebalance(); err != nil {
			t.Fatalf("phase %d rebalance: %v", phase, err)
		}
		writers.Wait()
		clock += 1000

		if err := ss.Flush(); err != nil {
			t.Fatal(err)
		}
		oracle.CheckGrouped(t, fmt.Sprintf("ShardedStore(phase %d)", phase), ss.ExecuteGrouped,
			testutil.RandomGroupedQueries(oracle.Snapshot(), 20, seed+int64(phase)+100))
	}

	// Final check after one more rebalance on the quiesced store, through
	// both the sequential and parallel scatter-gather paths.
	if err := ss.Rebalance(); err != nil {
		t.Fatal(err)
	}
	final := testutil.RandomGroupedQueries(oracle.Snapshot(), 20, seed+200)
	oracle.CheckGrouped(t, "ShardedStore(final)", ss.ExecuteGrouped, final)
	oracle.CheckGrouped(t, "ShardedStore(final,parallel)",
		func(q tsunami.Query) tsunami.GroupedResult { return ss.ExecuteGroupedParallelOn(q, 3, nil) },
		final)
	if ss.Stats().RowsMigrated == 0 {
		t.Error("rebalancing never migrated rows; the mid-migration grouped path was untested")
	}
}
